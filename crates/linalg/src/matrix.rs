//! Row-major dense matrix type and core operations.

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// `Matrix` is the workhorse container of the workspace: datasets are stored
/// as one row per sample, neural-network weights as `(out, in)` matrices,
/// covariance matrices as square symmetric matrices, and so on.
///
/// # Example
///
/// ```
/// use fsda_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m.get(1, 2), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "from_rows: row {i} has length {} != {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Dispatches through the blocked, runtime-selected kernels in
    /// [`crate::kernel`]; the result is bit-identical to
    /// [`Matrix::matmul_naive`] for every input (see the kernel module's
    /// bit-exactness contract).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        <f64 as crate::kernel::Element>::gemm_nn(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Reference matrix product: the pre-kernel `ikj` triple loop (the
    /// workspace's legacy `matmul`).
    ///
    /// This is the bit-exactness reference the blocked kernels are pinned
    /// against (see `tests/kernel_props.rs`). It is already partially
    /// optimized — the inner `j` loop is contiguous and auto-vectorizes —
    /// so the `reconstruction_kernels` bench reports it as a separate
    /// `legacy ikj` column next to the truly naive
    /// [`Matrix::matmul_textbook`] baseline. Prefer [`Matrix::matmul`]
    /// everywhere else.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: cache-friendly for row-major layout.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Textbook matrix product: the `ijk` triple loop — one serial dot
    /// product per output cell over a column-strided right-hand side.
    ///
    /// Bit-identical to [`Matrix::matmul_naive`] for every input (each cell
    /// accumulates its `k` terms in ascending order with the same
    /// multiply-then-add rounding and the same zero-skip), but the serial
    /// scalar accumulator and strided `B` walk keep it at latency-bound
    /// throughput — this is the "naive-f64" baseline of the
    /// `reconstruction_kernels` bench section, the classic starting point
    /// every blocked GEMM is measured against.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_textbook(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let k = self.cols;
        let n = other.cols;
        let mut out = Matrix::zeros(self.rows, n);
        for i in 0..self.rows {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let mut acc = 0.0;
                for (kk, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    acc += a * other.data[kk * n + j];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Symmetric Gram product `self * selfᵀ`, computing only the upper
    /// triangle and mirroring it.
    ///
    /// Bit-identical to `self.matmul(&self.transpose())` for every input:
    /// the upper triangle runs the exact reference accumulation; the mirror
    /// is bit-safe because IEEE multiplication commutes bitwise and an
    /// accumulator that starts at `+0.0` can never become `-0.0` (so the
    /// differing zero-skip pattern between `[i][j]` and `[j][i]` cannot
    /// change the sum); entries involving a non-finite row — where those
    /// two arguments break down — are recomputed with the reference loop.
    pub fn gram(&self) -> Matrix {
        let m = self.rows;
        let k = self.cols;
        let zt = self.transpose();
        let mut out = Matrix::zeros(m, m);
        let finite: Vec<bool> = self
            .iter_rows()
            .map(|r| r.iter().all(|v| v.is_finite()))
            .collect();
        for i in 0..m {
            // Upper-triangle segment out[i][i..]: ascending-k accumulation
            // with the reference's zero-skip on the left factor.
            for kk in 0..k {
                let a = self.data[i * k + kk];
                if a == 0.0 {
                    continue;
                }
                let zrow = &zt.data[kk * m + i..(kk + 1) * m];
                let orow = &mut out.data[i * m + i..(i + 1) * m];
                for (o, &b) in orow.iter_mut().zip(zrow) {
                    *o += a * b;
                }
            }
            for j in (i + 1)..m {
                out.data[j * m + i] = if finite[i] && finite[j] {
                    out.data[i * m + j]
                } else {
                    dot_skip(self.row(j), self.row(i))
                };
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.cols,
            "matvec: vector length {} != cols {}",
            v.len(),
            self.cols
        );
        self.iter_rows().map(|row| dot(row, v)).collect()
    }

    /// Elementwise sum; fails on shape mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn try_add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference; fails on shape mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn try_sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product; fails on shape mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn try_hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch(format!(
                "{}x{} vs {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every element by `s` and returns the result.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds `s * other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, s: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Selects the given rows (in order, duplicates allowed) into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Selects the given columns (in order) into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (k, &c) in indices.iter().enumerate() {
                dst[k] = src[c];
            }
        }
        out
    }

    /// Stacks `self` on top of `other` (row-wise concatenation).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "vstack: {} cols vs {} cols",
                self.cols, other.cols
            )));
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates `self` and `other` side by side (column-wise).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "hstack: {} rows vs {} rows",
                self.rows, other.rows
            )));
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Sample standard deviation of each column (denominator `n - 1`;
    /// zero when fewer than two rows).
    pub fn col_stds(&self) -> Vec<f64> {
        if self.rows < 2 {
            return vec![0.0; self.cols];
        }
        let means = self.col_means();
        let mut acc = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for ((a, &x), &m) in acc.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *a += d * d;
            }
        }
        let n = (self.rows - 1) as f64;
        acc.into_iter().map(|a| (a / n).sqrt()).collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element; 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()))
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for row in self.iter_rows().take(8) {
            write!(f, "  ")?;
            for v in row.iter().take(10) {
                write!(f, "{v:>10.4} ")?;
            }
            if self.cols > 10 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: lengths {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Dot product with the matmul reference's zero-skip on the left factor:
/// per-element it is exactly one output cell of [`Matrix::matmul_naive`].
fn dot_skip(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        if x == 0.0 {
            continue;
        }
        acc += x * y;
    }
    acc
}

/// Euclidean norm of a slice.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean_distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity between two slices; 0.0 when either has zero norm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn identity_is_diagonal() {
        let id = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = sample();
        let b = a.transpose();
        let p = a.matmul(&b);
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p.get(0, 0), 14.0);
        assert_eq!(p.get(0, 1), 32.0);
        assert_eq!(p.get(1, 1), 77.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = sample();
        let v = vec![1.0, 0.5, -1.0];
        let got = m.matvec(&v);
        assert!((got[0] - (1.0 + 1.0 - 3.0)).abs() < 1e-12);
        assert!((got[1] - (4.0 + 2.5 - 6.0)).abs() < 1e-12);
    }

    #[test]
    fn add_sub_hadamard() {
        let m = sample();
        let sum = m.try_add(&m).unwrap();
        assert_eq!(sum.get(1, 2), 12.0);
        let diff = sum.try_sub(&m).unwrap();
        assert_eq!(diff, m);
        let had = m.try_hadamard(&m).unwrap();
        assert_eq!(had.get(0, 2), 9.0);
    }

    #[test]
    fn shape_mismatch_errors() {
        let m = sample();
        let other = Matrix::zeros(3, 3);
        assert!(matches!(
            m.try_add(&other),
            Err(LinalgError::ShapeMismatch(_))
        ));
        assert!(matches!(
            m.vstack(&Matrix::zeros(1, 2)),
            Err(LinalgError::ShapeMismatch(_))
        ));
        assert!(matches!(
            m.hstack(&Matrix::zeros(3, 1)),
            Err(LinalgError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn stacking() {
        let m = sample();
        let v = m.vstack(&m).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(2), m.row(0));
        let h = m.hstack(&m).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.get(0, 4), 2.0);
    }

    #[test]
    fn selection() {
        let m = sample();
        let r = m.select_rows(&[1, 0, 1]);
        assert_eq!(r.shape(), (3, 3));
        assert_eq!(r.row(0), m.row(1));
        let c = m.select_cols(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
    }

    #[test]
    fn column_statistics() {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]);
        assert_eq!(m.col_means(), vec![2.0, 10.0]);
        let stds = m.col_stds();
        assert!((stds[0] - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(stds[1], 0.0);
    }

    #[test]
    fn norms_and_similarity() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        let other = Matrix::identity(2);
        m.axpy(2.0, &other);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn display_has_dims() {
        let s = format!("{}", sample());
        assert!(s.contains("2x3"));
    }

    #[test]
    fn from_fn_builds_expected_values() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 1), 11.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        sample().get(5, 0);
    }
}
