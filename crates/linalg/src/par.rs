//! A minimal self-scheduling worker pool for deterministic fan-out.
//!
//! Every parallel hot loop in the workspace — edge-wise CI tests in the PC
//! skeleton, per-feature tests in the F-node search, per-tree fitting in
//! the random forest, per-repeat experiment cells — has the same shape:
//! a list of **independent, read-only-input** work items whose results must
//! be combined *as if they had been computed sequentially*. This module is
//! the single implementation of that shape.
//!
//! # Determinism contract
//!
//! [`par_map`] returns results **in input order**, regardless of how the
//! operating system schedules the workers. Callers that fold the returned
//! vector in input order therefore produce bit-identical output for every
//! thread count, including 1 — this is what lets `PcConfig::parallel` and
//! `ForestConfig::threads` be pure performance knobs (see
//! `docs/ARCHITECTURE.md`, "Parallelism and determinism"). Two rules make
//! it work:
//!
//! 1. the closure must be a pure function of `(index, item)` — any hidden
//!    mutable state would reintroduce schedule dependence, which is why the
//!    pool requires `F: Sync` and hands out shared references only;
//! 2. all order-sensitive effects (graph edge removals, error propagation,
//!    RNG consumption) stay in the caller's sequential fold over the
//!    returned vector.
//!
//! Workers self-schedule by claiming the next unclaimed index from a shared
//! atomic counter, so a slow item (a large conditioning set, a deep tree)
//! does not stall the remaining work the way fixed chunking would.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Resolves a requested worker count: `None` means "all available cores".
///
/// Used by every `num_threads: Option<usize>` knob in the workspace.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Maps `f` over `items` on `threads` workers and returns the results in
/// **input order**.
///
/// With `threads <= 1` (or fewer than two items) the map runs inline on the
/// calling thread; the parallel path produces the identical vector, so the
/// thread count never changes a caller's observable output.
///
/// # Panics
///
/// Panics if `f` panics on any worker (the scope joins all workers first,
/// then re-raises a generic scope panic).
///
/// # Example
///
/// ```
/// use fsda_linalg::par::par_map;
///
/// let items: Vec<u64> = (0..100).collect();
/// let seq = par_map(1, &items, |i, &x| x * x + i as u64);
/// let par = par_map(4, &items, |i, &x| x * x + i as u64);
/// assert_eq!(seq, par);
/// ```
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // Send can only fail if the receiver is gone, which means
                // the scope is unwinding from another worker's panic.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("par_map: every index is claimed exactly once"))
        .collect()
}

/// A job executed by a [`ShardPool`] worker. The worker passes its own
/// shard index to the job so pinned per-shard state (epoch slots, scratch
/// buffers) can be indexed without thread-locals.
pub type ShardJob = Box<dyn FnOnce(usize) + Send + 'static>;

/// Why a [`ShardPool::try_submit`] call could not enqueue a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The shard's bounded queue is at capacity — backpressure; the caller
    /// should shed load or retry later.
    Full,
    /// The pool has shut down and the shard's worker is gone.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "shard queue is full"),
            SubmitError::Closed => write!(f, "shard pool has shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Shard {
    tx: mpsc::SyncSender<ShardJob>,
    depth: Arc<AtomicUsize>,
}

/// A persistent thread-per-shard worker pool with bounded per-shard queues.
///
/// Where [`par_map`] fans one batch out and joins, a `ShardPool` is the
/// long-running counterpart: each shard owns one OS thread and one bounded
/// FIFO queue, jobs submitted to the same shard execute **in submission
/// order on the same thread**, and a full queue rejects instead of
/// blocking ([`SubmitError::Full`]) so callers get typed backpressure
/// rather than unbounded memory growth. This is the substrate the
/// multi-tenant serving layer routes tenants over: tenant → shard is a
/// stable assignment, so per-tenant request order is preserved and one
/// hot tenant cannot starve the others' queues.
///
/// # Example
///
/// ```
/// use fsda_linalg::par::ShardPool;
/// use std::sync::mpsc;
///
/// let pool = ShardPool::new(2, 8);
/// let (tx, rx) = mpsc::channel();
/// pool.try_submit(1, Box::new(move |shard| tx.send(shard * 10).unwrap()))
///     .unwrap();
/// assert_eq!(rx.recv().unwrap(), 10);
/// ```
#[derive(Debug)]
pub struct ShardPool {
    shards: Vec<Shard>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("depth", &self.depth.load(Ordering::Relaxed))
            .finish()
    }
}

impl ShardPool {
    /// Spawns `shards` worker threads (floored at 1), each with a bounded
    /// queue of `queue_capacity` jobs (floored at 1).
    pub fn new(shards: usize, queue_capacity: usize) -> ShardPool {
        let shards = shards.max(1);
        let capacity = queue_capacity.max(1);
        let mut pool = ShardPool {
            shards: Vec::with_capacity(shards),
            handles: Vec::with_capacity(shards),
        };
        for shard_idx in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<ShardJob>(capacity);
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = Arc::clone(&depth);
            let handle = std::thread::Builder::new()
                .name(format!("fsda-shard-{shard_idx}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job(shard_idx);
                        worker_depth.fetch_sub(1, Ordering::Release);
                    }
                })
                .unwrap_or_else(|e| panic!("spawn shard worker {shard_idx}: {e}"));
            pool.shards.push(Shard { tx, depth });
            pool.handles.push(handle);
        }
        pool
    }

    /// Number of shards (worker threads) in the pool.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Jobs currently queued or executing on `shard`.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shards()`.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.shards[shard].depth.load(Ordering::Acquire)
    }

    /// Enqueues `job` on `shard` without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the shard's bounded queue is at capacity
    /// and [`SubmitError::Closed`] after shutdown.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shards()`.
    pub fn try_submit(&self, shard: usize, job: ShardJob) -> Result<(), SubmitError> {
        let s = &self.shards[shard];
        // Count before sending so depth never under-reports an accepted
        // job; undone on rejection.
        s.depth.fetch_add(1, Ordering::Acquire);
        match s.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(mpsc::TrySendError::Full(_)) => {
                s.depth.fetch_sub(1, Ordering::Release);
                Err(SubmitError::Full)
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                s.depth.fetch_sub(1, Ordering::Release);
                Err(SubmitError::Closed)
            }
        }
    }

    /// Drops the queues and joins every worker after it drains its shard.
    /// `Drop` does the same; this form surfaces worker panics to the
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while running a job.
    pub fn shutdown(mut self) {
        self.shards.clear(); // close every sender: workers drain and exit
        for handle in self.handles.drain(..) {
            if let Err(e) = handle.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shards.clear();
        for handle in self.handles.drain(..) {
            // Ignore worker panics during drop: propagating would abort.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_inline() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let f = |i: usize, x: &f64| (x.sin() * i as f64).to_bits();
        assert_eq!(par_map(1, &items, f), par_map(5, &items, f));
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn resolve_threads_floors_at_one() {
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(Some(7)), 7);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map(4, &items, |_, &x| {
            if x == 33 {
                panic!("worker boom");
            }
            x
        });
    }

    #[test]
    fn shard_jobs_run_in_submission_order() {
        let pool = ShardPool::new(1, 64);
        let (tx, rx) = mpsc::channel();
        for i in 0..32 {
            let tx = tx.clone();
            pool.try_submit(
                0,
                Box::new(move |shard| {
                    assert_eq!(shard, 0);
                    tx.send(i).unwrap();
                }),
            )
            .unwrap();
        }
        let seen: Vec<i32> = (0..32).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn full_shard_queue_rejects_with_backpressure() {
        let pool = ShardPool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        // Occupy the worker so subsequent jobs pile up in the queue.
        pool.try_submit(
            0,
            Box::new(move |_| {
                release_rx.recv().unwrap();
            }),
        )
        .unwrap();
        // The queue holds one job; keep submitting until the bound bites.
        let mut rejected = false;
        for _ in 0..4 {
            if pool.try_submit(0, Box::new(|_| {})) == Err(SubmitError::Full) {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "bounded queue never pushed back");
        assert!(pool.queue_depth(0) >= 1);
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shards_floor_at_one_and_report_counts() {
        let pool = ShardPool::new(0, 0);
        assert_eq!(pool.shards(), 1);
        assert_eq!(pool.queue_depth(0), 0);
        drop(pool); // Drop-path shutdown also joins cleanly.
    }
}
