//! A minimal self-scheduling worker pool for deterministic fan-out.
//!
//! Every parallel hot loop in the workspace — edge-wise CI tests in the PC
//! skeleton, per-feature tests in the F-node search, per-tree fitting in
//! the random forest, per-repeat experiment cells — has the same shape:
//! a list of **independent, read-only-input** work items whose results must
//! be combined *as if they had been computed sequentially*. This module is
//! the single implementation of that shape.
//!
//! # Determinism contract
//!
//! [`par_map`] returns results **in input order**, regardless of how the
//! operating system schedules the workers. Callers that fold the returned
//! vector in input order therefore produce bit-identical output for every
//! thread count, including 1 — this is what lets `PcConfig::parallel` and
//! `ForestConfig::threads` be pure performance knobs (see
//! `docs/ARCHITECTURE.md`, "Parallelism and determinism"). Two rules make
//! it work:
//!
//! 1. the closure must be a pure function of `(index, item)` — any hidden
//!    mutable state would reintroduce schedule dependence, which is why the
//!    pool requires `F: Sync` and hands out shared references only;
//! 2. all order-sensitive effects (graph edge removals, error propagation,
//!    RNG consumption) stay in the caller's sequential fold over the
//!    returned vector.
//!
//! Workers self-schedule by claiming the next unclaimed index from a shared
//! atomic counter, so a slow item (a large conditioning set, a deep tree)
//! does not stall the remaining work the way fixed chunking would.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolves a requested worker count: `None` means "all available cores".
///
/// Used by every `num_threads: Option<usize>` knob in the workspace.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Maps `f` over `items` on `threads` workers and returns the results in
/// **input order**.
///
/// With `threads <= 1` (or fewer than two items) the map runs inline on the
/// calling thread; the parallel path produces the identical vector, so the
/// thread count never changes a caller's observable output.
///
/// # Panics
///
/// Panics if `f` panics on any worker (the scope joins all workers first,
/// then re-raises a generic scope panic).
///
/// # Example
///
/// ```
/// use fsda_linalg::par::par_map;
///
/// let items: Vec<u64> = (0..100).collect();
/// let seq = par_map(1, &items, |i, &x| x * x + i as u64);
/// let par = par_map(4, &items, |i, &x| x * x + i as u64);
/// assert_eq!(seq, par);
/// ```
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // Send can only fail if the receiver is gone, which means
                // the scope is unwinding from another worker's panic.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("par_map: every index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_inline() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let f = |i: usize, x: &f64| (x.sin() * i as f64).to_bits();
        assert_eq!(par_map(1, &items, f), par_map(5, &items, f));
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn resolve_threads_floors_at_one() {
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(Some(7)), 7);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map(4, &items, |_, &x| {
            if x == 33 {
                panic!("worker boom");
            }
            x
        });
    }
}
