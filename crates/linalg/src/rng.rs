//! Seeded random sampling used across the workspace.
//!
//! [`SeededRng`] is a self-contained xoshiro256++ generator (seeded through
//! SplitMix64, the reference recommendation) with the distributions the
//! paper's methods require (normal via Box–Muller, multivariate normal via
//! Cholesky, categorical, Gumbel). Implementing the generator in-tree keeps
//! the workspace free of registry dependencies so it builds offline; the
//! algorithm is the public-domain reference construction of Blackman and
//! Vigna.

use crate::decomp::cholesky;
use crate::{Matrix, Result};

/// A deterministic random-number generator with the distributions needed by
/// the `fsda` stack.
///
/// Every stochastic component in the workspace takes a `u64` seed so that
/// experiments and tests are exactly reproducible.
///
/// # Example
///
/// ```
/// use fsda_linalg::SeededRng;
///
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    /// xoshiro256++ state; never all-zero by construction.
    s: [u64; 4],
    /// Cached second Box–Muller draw.
    spare_normal: Option<f64>,
}

/// One SplitMix64 step — used to expand the 64-bit seed into generator
/// state with good avalanche behaviour even for small sequential seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SeededRng {
            s,
            spare_normal: None,
        }
    }

    /// One xoshiro256++ step.
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// children of the same parent deterministically.
    pub fn fork(&mut self, stream: u64) -> SeededRng {
        let seed = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(seed)
    }

    /// Draws a fresh 64-bit seed (for deriving per-worker generators).
    pub fn next_seed(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform sample in `[0, 1)` with the full 53 bits of mantissa.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range: lo {lo} >= hi {hi}");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (widening-multiply range reduction).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: n must be positive");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Normal sample via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        let z = match self.spare_normal.take() {
            Some(z) => z,
            None => {
                // Draw u in (0,1] to avoid ln(0).
                let u = 1.0 - self.uniform();
                let v = self.uniform();
                let r = (-2.0 * u.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * v;
                self.spare_normal = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std * z
    }

    /// Vector of i.i.d. standard-normal samples.
    pub fn normal_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.normal(0.0, 1.0)).collect()
    }

    /// Matrix of i.i.d. normal samples.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, mean: f64, std: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.normal(mean, std))
    }

    /// One sample from a multivariate normal `N(mean, cov)` via Cholesky.
    ///
    /// # Errors
    ///
    /// Returns an error when `cov` is not positive definite.
    ///
    /// # Panics
    ///
    /// Panics if `mean.len() != cov.rows()`.
    pub fn multivariate_normal(&mut self, mean: &[f64], cov: &Matrix) -> Result<Vec<f64>> {
        assert_eq!(mean.len(), cov.rows(), "multivariate_normal: dim mismatch");
        let l = cholesky(cov)?;
        let z = self.normal_vec(mean.len());
        let mut out = l.matvec(&z);
        for (o, &m) in out.iter_mut().zip(mean) {
            *o += m;
        }
        Ok(out)
    }

    /// Samples an index from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "categorical: empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "categorical: weights sum to zero");
        let mut u = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Standard Gumbel(0, 1) sample (used by the Gumbel-softmax output in
    /// the CTGAN-style generator).
    pub fn gumbel(&mut self) -> f64 {
        let u = (1.0 - self.uniform()).max(1e-300);
        -(-u.ln()).ln()
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (order randomized).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k {k} > n {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions are needed.
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn determinism_same_seed() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let va: Vec<f64> = (0..16).map(|_| a.uniform()).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.uniform()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SeededRng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.uniform(), c2.uniform());
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeededRng::new(5);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.normal(3.0, 2.0)).collect();
        assert!((mean(&xs) - 3.0).abs() < 0.1);
        assert!((std_dev(&xs) - 2.0).abs() < 0.1);
    }

    #[test]
    fn multivariate_normal_covariance() {
        let mut rng = SeededRng::new(11);
        let cov = Matrix::from_rows(&[&[2.0, 0.8], &[0.8, 1.0]]);
        let n = 20_000;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let s = rng.multivariate_normal(&[1.0, -1.0], &cov).unwrap();
            xs.push(s[0]);
            ys.push(s[1]);
        }
        assert!((mean(&xs) - 1.0).abs() < 0.05);
        assert!((mean(&ys) + 1.0).abs() < 0.05);
        let c = crate::stats::covariance(&xs, &ys);
        assert!((c - 0.8).abs() < 0.08, "covariance {c}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = SeededRng::new(21);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.categorical(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.02);
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SeededRng::new(31);
        let idx = rng.sample_indices(10, 5);
        assert_eq!(idx.len(), 5);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(idx.iter().all(|&i| i < 10));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(41);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gumbel_is_finite() {
        let mut rng = SeededRng::new(51);
        for _ in 0..1000 {
            assert!(rng.gumbel().is_finite());
        }
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SeededRng::new(61);
        for _ in 0..1000 {
            let v = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
