//! Statistical primitives: moments, covariance/correlation, partial
//! correlation, the Fisher-z conditional-independence statistic, and
//! two-sample tests.
//!
//! These back the constraint-based causal discovery in `fsda-causal` and the
//! domain-alignment baselines (CORAL) in `fsda-core`.

use crate::decomp::inverse;
use crate::{LinalgError, Matrix, Result};

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance with denominator `n - 1`; 0.0 when fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample covariance of two equal-length slices (denominator `n - 1`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64
}

/// Pearson correlation; 0.0 when either input is (numerically) constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx < 1e-12 || sy < 1e-12 {
        return 0.0;
    }
    (covariance(xs, ys) / (sx * sy)).clamp(-1.0, 1.0)
}

/// Sample covariance matrix of the columns of `data` (rows are samples).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] when `data` has fewer than two rows.
pub fn covariance_matrix(data: &Matrix) -> Result<Matrix> {
    if data.rows() < 2 {
        return Err(LinalgError::Empty(
            "covariance_matrix needs >= 2 rows".into(),
        ));
    }
    let n = data.rows();
    let d = data.cols();
    let means = data.col_means();
    let mut cov = Matrix::zeros(d, d);
    for row in data.iter_rows() {
        for i in 0..d {
            let di = row[i] - means[i];
            if di == 0.0 {
                continue;
            }
            for j in i..d {
                let v = cov.get(i, j) + di * (row[j] - means[j]);
                cov.set(i, j, v);
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..d {
        for j in i..d {
            let v = cov.get(i, j) / denom;
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    Ok(cov)
}

/// Correlation matrix of the columns of `data`; constant columns correlate
/// 0.0 with everything (and 1.0 with themselves).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] when `data` has fewer than two rows.
pub fn correlation_matrix(data: &Matrix) -> Result<Matrix> {
    let cov = covariance_matrix(data)?;
    let d = cov.rows();
    let mut corr = Matrix::identity(d);
    for i in 0..d {
        for j in (i + 1)..d {
            let si = cov.get(i, i).sqrt();
            let sj = cov.get(j, j).sqrt();
            let r = if si < 1e-12 || sj < 1e-12 {
                0.0
            } else {
                (cov.get(i, j) / (si * sj)).clamp(-1.0, 1.0)
            };
            corr.set(i, j, r);
            corr.set(j, i, r);
        }
    }
    Ok(corr)
}

/// Partial correlation of variables `i` and `j` given the set `cond`,
/// computed from a full correlation matrix by inverting the submatrix over
/// `{i, j} ∪ cond` (precision-matrix formula).
///
/// Diagonal ridge regularization escalates `1e-8 → 1e-4 → 1e-2` until the
/// submatrix inverts; a conditioning set that stays singular past the
/// strongest ridge (duplicated or zero-variance columns) carries no usable
/// conditioning information, so the partial correlation degrades to `0.0`
/// — "cannot distinguish from independence" — rather than failing the whole
/// search.
///
/// # Errors
///
/// Returns [`LinalgError::NonFinite`] when the result is non-finite, which
/// only happens when `corr` itself contains NaN/Inf entries.
///
/// # Panics
///
/// Panics if `i == j` or `cond` contains `i` or `j`.
pub fn partial_correlation(corr: &Matrix, i: usize, j: usize, cond: &[usize]) -> Result<f64> {
    assert_ne!(i, j, "partial_correlation: i == j");
    assert!(
        !cond.contains(&i) && !cond.contains(&j),
        "partial_correlation: conditioning set contains i or j"
    );
    if cond.is_empty() {
        return Ok(corr.get(i, j));
    }
    let mut idx = vec![i, j];
    idx.extend_from_slice(cond);
    let k = idx.len();
    let base = Matrix::from_fn(k, k, |a, b| corr.get(idx[a], idx[b]));
    // Ridge keeps near-singular few-shot correlation matrices invertible;
    // escalate when the weak ridge is not enough.
    for &ridge in &[1e-8, 1e-4, 1e-2] {
        let mut sub = base.clone();
        for a in 0..k {
            let v = sub.get(a, a) + ridge;
            sub.set(a, a, v);
        }
        let Ok(prec) = inverse(&sub) else { continue };
        let denom = (prec.get(0, 0) * prec.get(1, 1)).sqrt();
        if denom < 1e-12 {
            return Ok(0.0);
        }
        let r = (-prec.get(0, 1) / denom).clamp(-1.0, 1.0);
        if !r.is_finite() {
            return Err(LinalgError::NonFinite(format!(
                "partial_correlation({i}, {j} | {cond:?}) is non-finite; \
                 the correlation matrix contains NaN/Inf entries"
            )));
        }
        return Ok(r);
    }
    // Singular past the strongest ridge: the conditioning set is degenerate
    // (duplicated / constant columns); treat as uninformative.
    Ok(0.0)
}

/// Fisher z-transform of a correlation coefficient.
pub fn fisher_z(r: f64) -> f64 {
    let r = r.clamp(-0.999_999, 0.999_999);
    0.5 * ((1.0 + r) / (1.0 - r)).ln()
}

/// Two-sided p-value of the Fisher-z conditional-independence test for a
/// (partial) correlation `r` computed on `n` samples with `cond_size`
/// conditioning variables.
///
/// Returns 1.0 (never reject) when the effective sample size is too small
/// for the statistic to be defined.
pub fn fisher_z_pvalue(r: f64, n: usize, cond_size: usize) -> f64 {
    let dof = n as f64 - cond_size as f64 - 3.0;
    if dof <= 0.0 {
        return 1.0;
    }
    let z = fisher_z(r).abs() * dof.sqrt();
    2.0 * (1.0 - normal_cdf(z))
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse standard normal CDF (Acklam's rational approximation).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile: p must be in (0,1), got {p}"
    );
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Two-sample Kolmogorov–Smirnov statistic `D = sup |F_a - F_b|`.
///
/// Returns 0.0 when either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Asymptotic p-value of the two-sample KS test.
///
/// Returns 1.0 when either sample is empty.
pub fn ks_pvalue(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let d = ks_statistic(a, b);
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let ne = na * nb / (na + nb);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    // Kolmogorov distribution tail sum.
    let mut p = 0.0;
    for k in 1..=100 {
        let kf = k as f64;
        let term = 2.0 * (-1.0_f64).powi(k + 1) * (-2.0 * kf * kf * lambda * lambda).exp();
        p += term;
        if term.abs() < 1e-12 {
            break;
        }
    }
    p.clamp(0.0, 1.0)
}

/// Welch's t-statistic for two samples with unequal variances.
///
/// Returns 0.0 when either sample has fewer than two values.
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return 0.0;
    }
    let va = variance(a) / a.len() as f64;
    let vb = variance(b) / b.len() as f64;
    let denom = (va + vb).sqrt();
    if denom < 1e-12 {
        return 0.0;
    }
    (mean(a) - mean(b)) / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn covariance_matrix_matches_pairwise() {
        let data = Matrix::from_rows(&[
            &[1.0, 2.0, 0.0],
            &[2.0, 1.0, 0.0],
            &[3.0, 4.0, 0.0],
            &[4.0, 3.0, 0.0],
        ]);
        let cov = covariance_matrix(&data).unwrap();
        let c01 = covariance(&data.col(0), &data.col(1));
        assert!((cov.get(0, 1) - c01).abs() < 1e-12);
        assert_eq!(cov.get(2, 2), 0.0);
        assert_eq!(cov.get(0, 1), cov.get(1, 0));
    }

    #[test]
    fn correlation_matrix_unit_diag() {
        let mut rng = SeededRng::new(7);
        let data = Matrix::from_fn(50, 4, |_, _| rng.normal(0.0, 1.0));
        let corr = correlation_matrix(&data).unwrap();
        for i in 0..4 {
            assert!((corr.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..4 {
                assert!(corr.get(i, j).abs() <= 1.0);
            }
        }
    }

    #[test]
    fn partial_correlation_removes_common_cause() {
        // z -> x, z -> y: x and y are correlated marginally but not given z.
        let mut rng = SeededRng::new(42);
        let n = 4000;
        let mut data = Matrix::zeros(n, 3);
        for r in 0..n {
            let z = rng.normal(0.0, 1.0);
            let x = 2.0 * z + rng.normal(0.0, 0.5);
            let y = -1.5 * z + rng.normal(0.0, 0.5);
            data.set(r, 0, x);
            data.set(r, 1, y);
            data.set(r, 2, z);
        }
        let corr = correlation_matrix(&data).unwrap();
        let marginal = corr.get(0, 1);
        assert!(
            marginal.abs() > 0.5,
            "marginal correlation should be strong: {marginal}"
        );
        let partial = partial_correlation(&corr, 0, 1, &[2]).unwrap();
        assert!(
            partial.abs() < 0.1,
            "partial correlation should vanish: {partial}"
        );
    }

    #[test]
    fn partial_correlation_survives_degenerate_conditioning() {
        // Duplicated columns: corr(2,3) == 1 exactly, so the conditioning
        // submatrix over {0, 1, 2, 3} is singular without regularization.
        let mut rng = SeededRng::new(9);
        let mut data = Matrix::zeros(200, 4);
        for r in 0..200 {
            let a = rng.normal(0.0, 1.0);
            let b = rng.normal(0.0, 1.0);
            data.set(r, 0, a);
            data.set(r, 1, b);
            data.set(r, 2, a + b);
            data.set(r, 3, a + b); // exact duplicate of column 2
        }
        let corr = correlation_matrix(&data).unwrap();
        let r = partial_correlation(&corr, 0, 1, &[2, 3]).unwrap();
        assert!(r.is_finite(), "degenerate conditioning set must not fail");
        assert!(r.abs() <= 1.0);
    }

    #[test]
    fn partial_correlation_zero_variance_conditioner() {
        // A constant column correlates 0 with everything; conditioning on it
        // must behave like not conditioning at all (and never error).
        let mut rng = SeededRng::new(11);
        let mut data = Matrix::zeros(300, 3);
        for r in 0..300 {
            let x = rng.normal(0.0, 1.0);
            data.set(r, 0, x);
            data.set(r, 1, 0.9 * x + rng.normal(0.0, 0.3));
            data.set(r, 2, 5.0); // dead counter
        }
        let corr = correlation_matrix(&data).unwrap();
        let marginal = partial_correlation(&corr, 0, 1, &[]).unwrap();
        let conditioned = partial_correlation(&corr, 0, 1, &[2]).unwrap();
        assert!((marginal - conditioned).abs() < 1e-6);
    }

    #[test]
    fn fisher_z_pvalue_behaviour() {
        // Strong correlation with many samples => tiny p-value.
        assert!(fisher_z_pvalue(0.8, 500, 0) < 1e-6);
        // Weak correlation with few samples => large p-value.
        assert!(fisher_z_pvalue(0.05, 30, 0) > 0.5);
        // Insufficient dof => never reject.
        assert_eq!(fisher_z_pvalue(0.9, 3, 2), 1.0);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-3, "p={p}");
        }
    }

    #[test]
    fn ks_detects_shift() {
        let mut rng = SeededRng::new(3);
        let a: Vec<f64> = (0..300).map(|_| rng.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..300).map(|_| rng.normal(2.0, 1.0)).collect();
        let same: Vec<f64> = (0..300).map(|_| rng.normal(0.0, 1.0)).collect();
        assert!(
            ks_pvalue(&a, &b) < 0.01,
            "shifted distributions should be detected"
        );
        assert!(
            ks_pvalue(&a, &same) > 0.01,
            "same distributions should not be rejected"
        );
    }

    #[test]
    fn welch_t_detects_mean_difference() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95];
        let b = [2.0, 2.1, 1.9, 2.05, 1.95];
        assert!(welch_t(&a, &b).abs() > 5.0);
        assert_eq!(welch_t(&a, &[1.0]), 0.0);
    }
}
