//! The `linalg.kernel.dispatch` event fires exactly once per process, the
//! first time a kernel runs while telemetry is enabled.
//!
//! This lives in its own integration-test binary (one `#[test]`) because
//! the once-per-process flag would otherwise race with unrelated tests
//! exercising `Matrix::matmul` in the same process.

use fsda_linalg::kernel::{kernel_path, Element};
use fsda_linalg::Matrix;
use fsda_telemetry::{clear_recorder, set_recorder, InMemoryRecorder};
use std::sync::Arc;

#[test]
fn dispatch_event_fires_once_per_process() {
    // Kernels run before a recorder exists must NOT consume the one-shot:
    // the event is reserved for the first observable opportunity.
    let warm = Matrix::identity(3);
    let _ = warm.matmul(&warm);

    let recorder = Arc::new(InMemoryRecorder::new());
    set_recorder(recorder.clone());

    let a = Matrix::from_fn(6, 5, |i, j| (i + j) as f64 * 0.25);
    let b = Matrix::from_fn(5, 4, |i, j| (i as f64 - j as f64) * 0.5);
    let _ = a.matmul(&b);
    let _ = a.matmul(&b);
    let mut c32 = vec![0.0f32; 4];
    <f32 as Element>::gemm_nn(1, 1, 4, &[1.0], &[1.0, 2.0, 3.0, 4.0], &mut c32);

    let snap = recorder.snapshot_now();
    assert_eq!(
        snap.events_count("linalg.kernel.dispatch"),
        1,
        "dispatch event must fire exactly once per process"
    );
    // The probed path is stable for the life of the process.
    assert_eq!(kernel_path(), kernel_path());
    clear_recorder();
}
