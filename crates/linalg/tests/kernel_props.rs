//! Property tests pinning the blocked, dispatched kernels to the naive
//! reference loop — bit-for-bit at `f64`, within a measured envelope at
//! `f32` — across arbitrary shapes, sparsity patterns, and special values.

use fsda_linalg::kernel::{matmul_at, matmul_nt, Act, Element};
use fsda_linalg::{Matrix, SeededRng};
use proptest::prelude::*;

/// A random matrix with an exact-zero mass: the kernels preserve the
/// reference's zero-skip, so zero-rich inputs probe that path (post-ReLU
/// activations are roughly half zeros in practice).
fn sparse_matrix(seed: u64, rows: usize, cols: usize, zero_pct: f64) -> Matrix {
    let mut rng = SeededRng::new(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.uniform() < zero_pct {
            0.0
        } else {
            rng.uniform_range(-2.0, 2.0)
        }
    })
}

fn assert_bits_eq(fast: &Matrix, slow: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.shape(), slow.shape());
    for (i, (x, y)) in fast.as_slice().iter().zip(slow.as_slice()).enumerate() {
        // NaN payloads are outside the contract (LLVM may commute the
        // operands of an addition, flipping which input NaN propagates);
        // NaN *placement* is exact, as is every non-NaN bit pattern.
        prop_assert!(
            x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
            "element {} diverged: {} vs {}",
            i,
            x,
            y
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The dispatched `Matrix::matmul` is bit-identical to the naive loop
    /// at arbitrary shapes — including shapes that exercise the register
    /// panel's row remainder and the AVX2 column-panel remainders — and the
    /// textbook `ijk` loop agrees bitwise with both (same ascending-`k`
    /// chain per cell, so all three are one equivalence class).
    #[test]
    fn matmul_bit_identical_to_naive(
        seed in 0u64..2000,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..40,
        zero_pct in 0.0f64..0.9,
    ) {
        let a = sparse_matrix(seed, m, k, zero_pct);
        let b = sparse_matrix(seed ^ 0xB0B, k, n, zero_pct * 0.5);
        let reference = a.matmul_naive(&b);
        assert_bits_eq(&a.matmul(&b), &reference)?;
        assert_bits_eq(&a.matmul_textbook(&b), &reference)?;
    }

    /// The B-transposed product (dense-layer forward orientation) matches
    /// transpose-then-multiply bitwise on both the small-batch dot path and
    /// the packed GEMM path.
    #[test]
    fn matmul_nt_bit_identical(
        seed in 0u64..2000,
        m in 1usize..20,
        k in 1usize..16,
        n in 1usize..16,
        zero_pct in 0.0f64..0.9,
    ) {
        let a = sparse_matrix(seed, m, k, zero_pct);
        let w = sparse_matrix(seed ^ 0x17, n, k, zero_pct * 0.3);
        assert_bits_eq(&matmul_nt(&a, &w), &a.matmul_naive(&w.transpose()))?;
    }

    /// The A-transposed product (dense-layer weight-gradient orientation)
    /// matches transpose-then-multiply bitwise.
    #[test]
    fn matmul_at_bit_identical(
        seed in 0u64..2000,
        k in 1usize..16,
        m in 1usize..12,
        n in 1usize..12,
        zero_pct in 0.0f64..0.9,
    ) {
        let a = sparse_matrix(seed, k, m, zero_pct);
        let b = sparse_matrix(seed ^ 0x33, k, n, zero_pct * 0.3);
        assert_bits_eq(&matmul_at(&a, &b), &a.transpose().matmul_naive(&b))?;
    }

    /// `gram` (one triangle + mirror) is bit-identical to the full
    /// multiply-by-own-transpose, including zero-heavy rows where the
    /// mirrored skip pattern differs from the reference's.
    #[test]
    fn gram_bit_identical(
        seed in 0u64..2000,
        m in 1usize..14,
        k in 1usize..14,
        zero_pct in 0.0f64..0.95,
    ) {
        let z = sparse_matrix(seed, m, k, zero_pct);
        assert_bits_eq(&z.gram(), &z.matmul_naive(&z.transpose()))?;
    }

    /// Non-finite values flow through the kernels exactly as through the
    /// reference: the zero-skip masks them where the reference masks them
    /// and propagates them where the reference propagates them.
    #[test]
    fn special_values_match_reference(
        seed in 0u64..500,
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        poison_a in 0usize..2,
    ) {
        let poison_a = poison_a == 1;
        let mut a = sparse_matrix(seed, m, k, 0.5);
        let mut b = sparse_matrix(seed ^ 0x44, k, n, 0.5);
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0];
        let mut rng = SeededRng::new(seed ^ 0x99);
        for &s in &specials {
            let target = if poison_a { &mut a } else { &mut b };
            let (r, c) = (
                (rng.uniform() * target.rows() as f64) as usize % target.rows(),
                (rng.uniform() * target.cols() as f64) as usize % target.cols(),
            );
            target.set(r, c, s);
        }
        assert_bits_eq(&a.matmul(&b), &a.matmul_naive(&b))?;
        let g = a.gram();
        assert_bits_eq(&g, &a.matmul_naive(&a.transpose()))?;
    }

    /// The fused `act(A·B + bias)` epilogue is bit-identical to the unfused
    /// multiply / add-bias / activate sequence at `f64`.
    #[test]
    fn fused_affine_act_bit_identical(
        seed in 0u64..1000,
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        act_idx in 0usize..5,
    ) {
        let act = [Act::Identity, Act::Relu, Act::LeakyRelu, Act::Tanh, Act::Sigmoid][act_idx];
        let a = sparse_matrix(seed, m, k, 0.4);
        let b = sparse_matrix(seed ^ 0x7A, k, n, 0.0);
        let mut rng = SeededRng::new(seed ^ 0xF1);
        let bias: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1.0, 1.0)).collect();

        // Fused kernel path.
        let mut c = vec![0.0; m * n];
        <f64 as Element>::gemm_nn(m, k, n, a.as_slice(), b.as_slice(), &mut c);
        <f64 as Element>::bias_act(&mut c, &bias, act);

        // Unfused reference sequence (exactly the legacy layer chain).
        let mut reference = a.matmul_naive(&b);
        for r in 0..m {
            let row = reference.row_mut(r);
            for (o, &bv) in row.iter_mut().zip(&bias) {
                *o += bv;
            }
        }
        let reference = reference.map(|x| act.eval_f64(x));
        for (x, y) in c.iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The `f32` GEMM stays within a tight envelope of the exact `f64`
    /// product for unit-scale inputs (the normalized regime the inference
    /// plane runs in).
    #[test]
    fn f32_gemm_divergence_bounded(
        seed in 0u64..1000,
        m in 1usize..16,
        k in 1usize..32,
        n in 1usize..40,
    ) {
        let a = sparse_matrix(seed, m, k, 0.2);
        let b = sparse_matrix(seed ^ 0x5C, k, n, 0.2);
        let a32: Vec<f32> = a.as_slice().iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b.as_slice().iter().map(|&v| v as f32).collect();
        let mut c32 = vec![0.0f32; m * n];
        <f32 as Element>::gemm_nn(m, k, n, &a32, &b32, &mut c32);
        let c64 = a.matmul_naive(&b);
        // |error| <= k * max|a| * max|b| * ~f32 eps, with slack for the
        // double rounding of the inputs themselves.
        let bound = (k as f64) * 2.0 * 2.0 * 1e-6 + 1e-6;
        for (x, y) in c32.iter().zip(c64.as_slice()) {
            prop_assert!(
                (f64::from(*x) - y).abs() <= bound,
                "f32 {} vs f64 {} beyond {}",
                x, y, bound
            );
        }
    }

    /// GEMV against the matmul reference on a single row.
    #[test]
    fn gemv_nt_bit_identical(
        seed in 0u64..1000,
        k in 1usize..24,
        n in 1usize..24,
        zero_pct in 0.0f64..0.9,
    ) {
        let x = sparse_matrix(seed, 1, k, zero_pct);
        let w = sparse_matrix(seed ^ 0x61, n, k, 0.1);
        let mut y = vec![0.0; n];
        <f64 as Element>::gemv_nt(w.as_slice(), x.row(0), &mut y);
        let reference = x.matmul_naive(&w.transpose());
        for (a, b) in y.iter().zip(reference.row(0)) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
