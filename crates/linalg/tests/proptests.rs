//! Property-based tests for the linear-algebra core.

use fsda_linalg::decomp::{cholesky, inverse, lu_solve, sym_eigen};
use fsda_linalg::stats::{correlation_matrix, fisher_z, ks_statistic, normal_cdf, pearson};
use fsda_linalg::{Matrix, SeededRng};
use proptest::prelude::*;

/// A random well-conditioned symmetric positive-definite matrix.
fn spd_matrix(seed: u64, n: usize) -> Matrix {
    let mut rng = SeededRng::new(seed);
    let a = rng.normal_matrix(n + 2, n, 0.0, 1.0);
    let mut m = a.transpose().matmul(&a);
    for i in 0..n {
        m.set(i, i, m.get(i, i) + 0.5);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(seed in 0u64..1000, rows in 1usize..8, cols in 1usize..8) {
        let mut rng = SeededRng::new(seed);
        let m = rng.normal_matrix(rows, cols, 0.0, 1.0);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(seed in 0u64..1000, n in 1usize..7) {
        let mut rng = SeededRng::new(seed);
        let m = rng.normal_matrix(n, n, 0.0, 1.0);
        let id = Matrix::identity(n);
        prop_assert!(m.matmul(&id).try_sub(&m).unwrap().max_abs() < 1e-12);
        prop_assert!(id.matmul(&m).try_sub(&m).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn vstack_hstack_shapes(seed in 0u64..1000, r in 1usize..5, c in 1usize..5) {
        let mut rng = SeededRng::new(seed);
        let a = rng.normal_matrix(r, c, 0.0, 1.0);
        let b = rng.normal_matrix(r, c, 0.0, 1.0);
        let v = a.vstack(&b).unwrap();
        prop_assert_eq!(v.shape(), (2 * r, c));
        let h = a.hstack(&b).unwrap();
        prop_assert_eq!(h.shape(), (r, 2 * c));
        // Content preserved.
        prop_assert_eq!(v.row(0), a.row(0));
        prop_assert_eq!(&h.row(0)[..c], a.row(0));
    }

    #[test]
    fn cholesky_reconstructs_spd(seed in 0u64..500, n in 1usize..7) {
        let m = spd_matrix(seed, n);
        let l = cholesky(&m).unwrap();
        let back = l.matmul(&l.transpose());
        prop_assert!(back.try_sub(&m).unwrap().max_abs() < 1e-8 * (1.0 + m.max_abs()));
    }

    #[test]
    fn inverse_round_trip(seed in 0u64..500, n in 1usize..7) {
        let m = spd_matrix(seed, n);
        let inv = inverse(&m).unwrap();
        let id = m.matmul(&inv);
        prop_assert!(id.try_sub(&Matrix::identity(n)).unwrap().max_abs() < 1e-7);
    }

    #[test]
    fn lu_solve_solves(seed in 0u64..500, n in 1usize..7) {
        let m = spd_matrix(seed, n);
        let mut rng = SeededRng::new(seed ^ 0x55);
        let x: Vec<f64> = rng.normal_vec(n);
        let b = m.matvec(&x);
        let solved = lu_solve(&m, &b).unwrap();
        for (a, e) in solved.iter().zip(&x) {
            prop_assert!((a - e).abs() < 1e-6);
        }
    }

    #[test]
    fn eigenvalues_of_spd_are_positive(seed in 0u64..500, n in 1usize..7) {
        let m = spd_matrix(seed, n);
        let (vals, _) = sym_eigen(&m).unwrap();
        for v in vals {
            prop_assert!(v > 0.0, "SPD eigenvalue must be positive: {v}");
        }
    }

    #[test]
    fn pearson_bounded(seed in 0u64..1000, n in 2usize..40) {
        let mut rng = SeededRng::new(seed);
        let xs: Vec<f64> = rng.normal_vec(n);
        let ys: Vec<f64> = rng.normal_vec(n);
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        // Self-correlation is 1.
        prop_assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_matrix_is_symmetric_unit_diag(seed in 0u64..500, n in 2usize..20, d in 2usize..6) {
        let mut rng = SeededRng::new(seed);
        let m = rng.normal_matrix(n, d, 0.0, 1.0);
        let c = correlation_matrix(&m).unwrap();
        for i in 0..d {
            prop_assert!((c.get(i, i) - 1.0).abs() < 1e-9);
            for j in 0..d {
                prop_assert!((c.get(i, j) - c.get(j, i)).abs() < 1e-12);
                prop_assert!(c.get(i, j).abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn fisher_z_is_odd_and_monotone(r in -0.99f64..0.99) {
        prop_assert!((fisher_z(r) + fisher_z(-r)).abs() < 1e-12);
        prop_assert!(fisher_z(r) <= fisher_z((r + 0.005).min(0.999)));
    }

    #[test]
    fn normal_cdf_monotone_bounded(x in -6.0f64..6.0) {
        let c = normal_cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(normal_cdf(x) <= normal_cdf(x + 0.01) + 1e-12);
    }

    #[test]
    fn ks_statistic_bounded_and_zero_on_self(seed in 0u64..1000, n in 1usize..50) {
        let mut rng = SeededRng::new(seed);
        let xs: Vec<f64> = rng.normal_vec(n);
        let ys: Vec<f64> = rng.normal_vec(n);
        let d = ks_statistic(&xs, &ys);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!(ks_statistic(&xs, &xs) < 1e-12);
    }

    #[test]
    fn sample_indices_unique(seed in 0u64..1000, n in 1usize..50) {
        let mut rng = SeededRng::new(seed);
        let k = (n / 2).max(1);
        let idx = rng.sample_indices(n, k);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
    }

    #[test]
    fn select_rows_preserves_content(seed in 0u64..1000, n in 2usize..10, c in 1usize..5) {
        let mut rng = SeededRng::new(seed);
        let m = rng.normal_matrix(n, c, 0.0, 1.0);
        let sel = m.select_rows(&[n - 1, 0]);
        prop_assert_eq!(sel.row(0), m.row(n - 1));
        prop_assert_eq!(sel.row(1), m.row(0));
    }
}
