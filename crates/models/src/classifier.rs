//! The model-agnostic [`Classifier`] trait and the classifier factory.

use crate::forest::ForestConfig;
use crate::gbdt::GbdtConfig;
use crate::mlp::MlpConfig;
use crate::tnet::TnetConfig;
use crate::tree::{FlatNode, FlatRegNode};
use crate::{ModelError, Result};
use fsda_linalg::Matrix;
use fsda_nn::state::StateDict;
use fsda_nn::InferPrecision;

/// A multi-class classifier over tabular features.
///
/// All four of the paper's classifier families implement this trait, which
/// is what makes the DA framework model-agnostic. `fit_weighted` is the
/// core training entry point (the S&T baseline up-weights target-domain
/// shots); `fit` is the unweighted convenience wrapper.
///
/// The trait requires `Send + Sync`: prediction takes `&self` and no
/// implementation uses interior mutability, so fitted classifiers can be
/// shared across serving threads (see `DriftMitigator` in `fsda-core`).
pub trait Classifier: Send + Sync {
    /// Trains on `x` (rows are samples) with per-sample `weights`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] when shapes disagree, inputs
    /// are empty, or a label is `>= num_classes`.
    fn fit_weighted(
        &mut self,
        x: &Matrix,
        y: &[usize],
        weights: &[f64],
        num_classes: usize,
    ) -> Result<()>;

    /// Trains with unit weights.
    ///
    /// # Errors
    ///
    /// As [`Classifier::fit_weighted`].
    fn fit(&mut self, x: &Matrix, y: &[usize], num_classes: usize) -> Result<()> {
        let weights = vec![1.0; y.len()];
        self.fit_weighted(x, y, &weights, num_classes)
    }

    /// Class-probability estimates, one row per sample (rows sum to 1).
    ///
    /// # Panics
    ///
    /// Implementations panic when called before `fit`.
    fn predict_proba(&self, x: &Matrix) -> Matrix;

    /// Hard class predictions (argmax of [`Classifier::predict_proba`]).
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        argmax_rows(&self.predict_proba(x))
    }

    /// [`Classifier::predict_proba`] at an explicit numeric precision.
    ///
    /// [`InferPrecision::F64Exact`] must be bit-identical to
    /// `predict_proba`; [`InferPrecision::F32Fast`] may trade a small,
    /// bounded divergence for throughput (neural classifiers with a
    /// compiled inference plan run the single-precision kernels; tree
    /// ensembles have no fast path and ignore the hint).
    ///
    /// # Panics
    ///
    /// Implementations panic when called before `fit`.
    fn predict_proba_with(&self, x: &Matrix, precision: InferPrecision) -> Matrix {
        let _ = precision;
        self.predict_proba(x)
    }

    /// Hard class predictions at an explicit numeric precision (argmax of
    /// [`Classifier::predict_proba_with`]).
    fn predict_with(&self, x: &Matrix, precision: InferPrecision) -> Vec<usize> {
        argmax_rows(&self.predict_proba_with(x, precision))
    }

    /// Short human-readable model name ("tnet", "mlp", "rf", "xgb").
    fn name(&self) -> &'static str;

    /// Captures the fitted model as a self-describing
    /// [`ClassifierSnapshot`] that [`restore_classifier`] turns back into
    /// an equivalent model with bit-identical predictions.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFitted`] before a successful fit and
    /// [`ModelError::InvalidInput`] for models without snapshot support
    /// (the default — e.g. few-shot embedding baselines).
    fn snapshot(&self) -> Result<ClassifierSnapshot> {
        Err(ModelError::InvalidInput(format!(
            "classifier '{}' does not support snapshots",
            self.name()
        )))
    }
}

/// A serializable capture of a fitted classifier: the architecture config,
/// training seed (provenance), and all learned state.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierSnapshot {
    /// A fitted [`crate::tnet::TnetClassifier`].
    Tnet {
        /// Architecture hyper-parameters.
        config: TnetConfig,
        /// Training seed (provenance).
        seed: u64,
        /// Input feature dimension.
        in_dim: usize,
        /// Number of classes.
        num_classes: usize,
        /// Network weights and batch-norm running statistics.
        state: StateDict,
    },
    /// A fitted [`crate::mlp::MlpClassifier`].
    Mlp {
        /// Architecture hyper-parameters.
        config: MlpConfig,
        /// Training seed (provenance).
        seed: u64,
        /// Input feature dimension.
        in_dim: usize,
        /// Number of classes.
        num_classes: usize,
        /// Network weights.
        state: StateDict,
    },
    /// A fitted [`crate::forest::RandomForest`].
    Forest {
        /// Forest hyper-parameters.
        config: ForestConfig,
        /// Training seed (provenance).
        seed: u64,
        /// Number of classes.
        num_classes: usize,
        /// Flat node lists, one per tree.
        trees: Vec<Vec<FlatNode>>,
    },
    /// A fitted [`crate::gbdt::GradientBoosting`].
    Gbdt {
        /// Boosting hyper-parameters.
        config: GbdtConfig,
        /// Training seed (provenance).
        seed: u64,
        /// Number of classes.
        num_classes: usize,
        /// Per-class log-prior scores.
        base_score: Vec<f64>,
        /// Flat node lists, `trees[round][class]`.
        trees: Vec<Vec<Vec<FlatRegNode>>>,
    },
}

/// Rebuilds a fitted classifier from a [`ClassifierSnapshot`].
///
/// # Errors
///
/// Returns [`ModelError::InvalidInput`] when the snapshot's state does not
/// match the architecture its config describes (a corrupted or hand-edited
/// artifact).
pub fn restore_classifier(snapshot: &ClassifierSnapshot) -> Result<Box<dyn Classifier>> {
    match snapshot {
        ClassifierSnapshot::Tnet {
            config,
            seed,
            in_dim,
            num_classes,
            state,
        } => Ok(Box::new(crate::tnet::TnetClassifier::from_snapshot(
            config.clone(),
            *seed,
            *in_dim,
            *num_classes,
            state,
        )?)),
        ClassifierSnapshot::Mlp {
            config,
            seed,
            in_dim,
            num_classes,
            state,
        } => Ok(Box::new(crate::mlp::MlpClassifier::from_snapshot(
            config.clone(),
            *seed,
            *in_dim,
            *num_classes,
            state,
        )?)),
        ClassifierSnapshot::Forest {
            config,
            seed,
            num_classes,
            trees,
        } => Ok(Box::new(crate::forest::RandomForest::from_snapshot(
            config.clone(),
            *seed,
            *num_classes,
            trees,
        )?)),
        ClassifierSnapshot::Gbdt {
            config,
            seed,
            num_classes,
            base_score,
            trees,
        } => Ok(Box::new(crate::gbdt::GradientBoosting::from_snapshot(
            config.clone(),
            *seed,
            *num_classes,
            base_score.clone(),
            trees,
        )?)),
    }
}

/// Row-wise argmax helper shared by classifier implementations.
pub fn argmax_rows(probs: &Matrix) -> Vec<usize> {
    (0..probs.rows())
        .map(|r| {
            probs
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Validates the common fit preconditions shared by all classifiers.
pub(crate) fn validate_fit(
    x: &Matrix,
    y: &[usize],
    weights: &[f64],
    num_classes: usize,
) -> Result<()> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(ModelError::InvalidInput("empty feature matrix".into()));
    }
    if x.rows() != y.len() {
        return Err(ModelError::InvalidInput(format!(
            "{} rows but {} labels",
            x.rows(),
            y.len()
        )));
    }
    if weights.len() != y.len() {
        return Err(ModelError::InvalidInput(format!(
            "{} weights for {} samples",
            weights.len(),
            y.len()
        )));
    }
    if num_classes < 2 {
        return Err(ModelError::InvalidInput("need at least 2 classes".into()));
    }
    if let Some(&bad) = y.iter().find(|&&l| l >= num_classes) {
        return Err(ModelError::InvalidInput(format!(
            "label {bad} out of range for {num_classes} classes"
        )));
    }
    if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
        return Err(ModelError::InvalidInput(
            "weights must be finite and non-negative".into(),
        ));
    }
    Ok(())
}

/// The four classifier families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// Deep tabular network (TNet in the paper's tables).
    Tnet,
    /// Plain multilayer perceptron.
    Mlp,
    /// Random forest.
    RandomForest,
    /// XGBoost-style gradient-boosted trees.
    Xgb,
}

impl ClassifierKind {
    /// All four kinds, in the paper's column order.
    pub const ALL: [ClassifierKind; 4] = [
        ClassifierKind::Tnet,
        ClassifierKind::Mlp,
        ClassifierKind::RandomForest,
        ClassifierKind::Xgb,
    ];

    /// Constructs a default-configured classifier of this kind.
    pub fn build(self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::Tnet => Box::new(crate::tnet::TnetClassifier::new(
                crate::tnet::TnetConfig::default(),
                seed,
            )),
            ClassifierKind::Mlp => Box::new(crate::mlp::MlpClassifier::new(
                crate::mlp::MlpConfig::default(),
                seed,
            )),
            ClassifierKind::RandomForest => Box::new(crate::forest::RandomForest::new(
                crate::forest::ForestConfig::default(),
                seed,
            )),
            ClassifierKind::Xgb => Box::new(crate::gbdt::GradientBoosting::new(
                crate::gbdt::GbdtConfig::default(),
                seed,
            )),
        }
    }

    /// The table column label.
    pub fn label(self) -> &'static str {
        match self {
            ClassifierKind::Tnet => "TNet",
            ClassifierKind::Mlp => "MLP",
            ClassifierKind::RandomForest => "RF",
            ClassifierKind::Xgb => "XGB",
        }
    }
}

impl std::fmt::Display for ClassifierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_rows_picks_largest() {
        let m = Matrix::from_rows(&[&[0.1, 0.9], &[0.8, 0.2]]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    fn validate_fit_rejects_bad_inputs() {
        let x = Matrix::zeros(2, 2);
        let ok = validate_fit(&x, &[0, 1], &[1.0, 1.0], 2);
        assert!(ok.is_ok());
        assert!(validate_fit(&Matrix::zeros(0, 2), &[], &[], 2).is_err());
        assert!(validate_fit(&x, &[0], &[1.0], 2).is_err());
        assert!(validate_fit(&x, &[0, 1], &[1.0], 2).is_err());
        assert!(validate_fit(&x, &[0, 5], &[1.0, 1.0], 2).is_err());
        assert!(validate_fit(&x, &[0, 1], &[1.0, -1.0], 2).is_err());
        assert!(validate_fit(&x, &[0, 0], &[1.0, 1.0], 1).is_err());
    }

    #[test]
    fn kind_labels_and_factory() {
        for kind in ClassifierKind::ALL {
            let model = kind.build(1);
            assert!(!model.name().is_empty());
            assert!(!kind.label().is_empty());
            assert_eq!(format!("{kind}"), kind.label());
        }
    }
}
