//! Embedding network for the metric-based few-shot baselines (MatchNet,
//! ProtoNet) and for the SCL baseline's representation learning.

use crate::classifier::validate_fit;
use crate::Result;
use fsda_linalg::{matrix, Matrix, SeededRng};
use fsda_nn::layer::{Activation, Dense};
use fsda_nn::loss::cross_entropy;
use fsda_nn::optim::{Adam, Optimizer};
use fsda_nn::train::BatchIter;
use fsda_nn::Sequential;

/// Hyper-parameters of [`EmbeddingNet`].
#[derive(Debug, Clone)]
pub struct EmbeddingConfig {
    /// Hidden-layer widths of the encoder trunk.
    pub hidden: Vec<usize>,
    /// Output embedding dimension.
    pub embed_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            hidden: vec![128],
            embed_dim: 32,
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
        }
    }
}

/// An encoder mapping samples to a metric space, trained on source-domain
/// classification (embedding trunk + softmax head). MatchNet classifies by
/// attention over support-set embeddings; ProtoNet by distance to class
/// prototypes — both consume [`EmbeddingNet::embed`].
pub struct EmbeddingNet {
    config: EmbeddingConfig,
    seed: u64,
    encoder: Option<Sequential>,
    head: Option<Sequential>,
}

impl std::fmt::Debug for EmbeddingNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingNet")
            .field("config", &self.config)
            .field("fitted", &self.encoder.is_some())
            .finish()
    }
}

impl EmbeddingNet {
    /// Creates an untrained embedding network.
    pub fn new(config: EmbeddingConfig, seed: u64) -> Self {
        EmbeddingNet {
            config,
            seed,
            encoder: None,
            head: None,
        }
    }

    /// Trains encoder + classification head on labelled source data.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidInput`] on malformed inputs.
    pub fn fit(&mut self, x: &Matrix, y: &[usize], num_classes: usize) -> Result<()> {
        let w = vec![1.0; y.len()];
        validate_fit(x, y, &w, num_classes)?;
        let mut rng = SeededRng::new(self.seed);
        let mut encoder = Sequential::new();
        let mut prev = x.cols();
        for &hdim in &self.config.hidden {
            encoder.push(Dense::new(prev, hdim, &mut rng));
            encoder.push(Activation::relu());
            prev = hdim;
        }
        encoder.push(Dense::new(prev, self.config.embed_dim, &mut rng));
        let mut head = Sequential::new();
        head.push(Activation::relu());
        head.push(Dense::new(self.config.embed_dim, num_classes, &mut rng));

        let mut opt = Adam::new(self.config.learning_rate);
        for _ in 0..self.config.epochs {
            for batch in BatchIter::new(x.rows(), self.config.batch_size.min(x.rows()), &mut rng) {
                let bx = x.select_rows(&batch);
                let by: Vec<usize> = batch.iter().map(|&i| y[i]).collect();
                let emb = encoder.forward(&bx, true);
                let logits = head.forward(&emb, true);
                let (_, grad) = cross_entropy(&logits, &by);
                encoder.zero_grad();
                head.zero_grad();
                let grad_emb = head.backward(&grad);
                encoder.backward(&grad_emb);
                let mut params = encoder.params_mut();
                params.extend(head.params_mut());
                opt.step(&mut params);
            }
        }
        self.encoder = Some(encoder);
        self.head = Some(head);
        Ok(())
    }

    /// Maps samples to embeddings.
    ///
    /// # Panics
    ///
    /// Panics when called before [`EmbeddingNet::fit`].
    pub fn embed(&self, x: &Matrix) -> Matrix {
        let encoder = self
            .encoder
            .as_ref()
            .expect("EmbeddingNet: embed before fit");
        encoder.infer(x)
    }

    /// Maps samples to L2-normalized embeddings (for cosine attention).
    ///
    /// # Panics
    ///
    /// Panics when called before [`EmbeddingNet::fit`].
    pub fn embed_normalized(&self, x: &Matrix) -> Matrix {
        let mut e = self.embed(x);
        for r in 0..e.rows() {
            let norm = matrix::norm(e.row(r)).max(1e-12);
            for v in e.row_mut(r) {
                *v /= norm;
            }
        }
        e
    }

    /// Embedding dimension.
    pub fn embed_dim(&self) -> usize {
        self.config.embed_dim
    }

    /// The configuration this net was built with.
    pub fn config(&self) -> &EmbeddingConfig {
        &self.config
    }

    /// Snapshots the fitted encoder's parameters (the classification head
    /// is a training aid only and is not exported).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::NotFitted`] before
    /// [`EmbeddingNet::fit`].
    pub fn export_encoder(&self) -> Result<fsda_nn::state::StateDict> {
        match &self.encoder {
            Some(encoder) => Ok(fsda_nn::state::export_state(encoder)),
            None => Err(crate::ModelError::NotFitted),
        }
    }

    /// Rebuilds a fitted net from an encoder snapshot: reconstructs the
    /// architecture from `config` and `input_dim`, then overwrites every
    /// parameter from `state`. The classification head is not restored, so
    /// only [`EmbeddingNet::embed`] / [`EmbeddingNet::embed_normalized`]
    /// are usable — which is all inference needs.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidInput`] when the snapshot does
    /// not match the architecture.
    pub fn from_encoder_state(
        config: EmbeddingConfig,
        seed: u64,
        input_dim: usize,
        state: &fsda_nn::state::StateDict,
    ) -> Result<Self> {
        // Dummy rng: every Dense parameter is overwritten by `load_state`.
        let mut rng = SeededRng::new(0);
        let mut encoder = Sequential::new();
        let mut prev = input_dim;
        for &hdim in &config.hidden {
            encoder.push(Dense::new(prev, hdim, &mut rng));
            encoder.push(Activation::relu());
            prev = hdim;
        }
        encoder.push(Dense::new(prev, config.embed_dim, &mut rng));
        fsda_nn::state::load_state(&mut encoder, state).map_err(crate::ModelError::InvalidInput)?;
        Ok(EmbeddingNet {
            config,
            seed,
            encoder: Some(encoder),
            head: None,
        })
    }
}

/// Per-class mean embeddings ("prototypes").
///
/// # Panics
///
/// Panics if labels and rows disagree or a label is out of range.
pub fn class_prototypes(embeddings: &Matrix, labels: &[usize], num_classes: usize) -> Matrix {
    assert_eq!(
        embeddings.rows(),
        labels.len(),
        "class_prototypes: length mismatch"
    );
    let d = embeddings.cols();
    let mut protos = Matrix::zeros(num_classes, d);
    let mut counts = vec![0usize; num_classes];
    for (r, &l) in labels.iter().enumerate() {
        assert!(l < num_classes, "label out of range");
        counts[l] += 1;
        let row = embeddings.row(r);
        let p = protos.row_mut(l);
        for (pv, &x) in p.iter_mut().zip(row) {
            *pv += x;
        }
    }
    for (c, &count) in counts.iter().enumerate() {
        if count > 0 {
            for v in protos.row_mut(c) {
                *v /= count as f64;
            }
        }
    }
    protos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, classes: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let n = n_per * classes;
        let mut x = Matrix::zeros(n, 4);
        let mut y = Vec::with_capacity(n);
        for c in 0..classes {
            for _ in 0..n_per {
                let r = y.len();
                for j in 0..4 {
                    let center = if j % classes == c { 3.0 } else { 0.0 };
                    x.set(r, j, rng.normal(center, 0.6));
                }
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn embeddings_cluster_by_class() {
        let (x, y) = blobs(30, 3, 1);
        let mut net = EmbeddingNet::new(
            EmbeddingConfig {
                epochs: 40,
                ..EmbeddingConfig::default()
            },
            2,
        );
        net.fit(&x, &y, 3).unwrap();
        let emb = net.embed(&x);
        let protos = class_prototypes(&emb, &y, 3);
        // Samples are closer to their own prototype than to others.
        let mut correct = 0;
        for (r, &label) in y.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..3 {
                let d = matrix::euclidean_distance(emb.row(r), protos.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        assert!(correct as f64 / emb.rows() as f64 > 0.95);
    }

    #[test]
    fn normalized_embeddings_have_unit_norm() {
        let (x, y) = blobs(10, 2, 2);
        let mut net = EmbeddingNet::new(
            EmbeddingConfig {
                epochs: 5,
                ..EmbeddingConfig::default()
            },
            3,
        );
        net.fit(&x, &y, 2).unwrap();
        let e = net.embed_normalized(&x);
        for r in 0..e.rows() {
            assert!((matrix::norm(e.row(r)) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prototypes_are_means() {
        let emb = Matrix::from_rows(&[&[1.0, 0.0], &[3.0, 0.0], &[0.0, 2.0]]);
        let protos = class_prototypes(&emb, &[0, 0, 1], 2);
        assert_eq!(protos.row(0), &[2.0, 0.0]);
        assert_eq!(protos.row(1), &[0.0, 2.0]);
    }

    #[test]
    fn empty_class_prototype_is_zero() {
        let emb = Matrix::from_rows(&[&[1.0]]);
        let protos = class_prototypes(&emb, &[0], 3);
        assert_eq!(protos.row(2), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "embed before fit")]
    fn embed_before_fit_panics() {
        let net = EmbeddingNet::new(EmbeddingConfig::default(), 1);
        let _ = net.embed(&Matrix::zeros(1, 2));
    }
}
