//! Random forest: bagged CART trees with feature subsampling, trained in
//! parallel on the shared `fsda_linalg::par` worker pool.

use crate::classifier::{validate_fit, Classifier, ClassifierSnapshot};
use crate::tree::{DecisionTree, FlatNode, TreeConfig};
use crate::{ModelError, Result};
use fsda_linalg::par::par_map;
use fsda_linalg::{Matrix, SeededRng};

/// Hyper-parameters of [`RandomForest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features per split; `None` = `sqrt(d)`.
    pub mtry: Option<usize>,
    /// Bootstrap-sample fraction of the training set per tree.
    pub sample_fraction: f64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            num_trees: 100,
            max_depth: 16,
            min_samples_leaf: 2,
            mtry: None,
            sample_fraction: 1.0,
            threads: 4,
        }
    }
}

/// A random-forest classifier (the "RF" column of the paper's tables).
pub struct RandomForest {
    config: ForestConfig,
    seed: u64,
    trees: Vec<DecisionTree>,
    num_classes: usize,
}

impl std::fmt::Debug for RandomForest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomForest")
            .field("config", &self.config)
            .field("trees", &self.trees.len())
            .finish()
    }
}

impl RandomForest {
    /// Creates an untrained forest.
    pub fn new(config: ForestConfig, seed: u64) -> Self {
        RandomForest {
            config,
            seed,
            trees: Vec::new(),
            num_classes: 0,
        }
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Rebuilds a fitted forest from a snapshot's config and flat trees.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] when the snapshot holds no
    /// trees or any tree is malformed.
    pub fn from_snapshot(
        config: ForestConfig,
        seed: u64,
        num_classes: usize,
        trees: &[Vec<FlatNode>],
    ) -> Result<Self> {
        if trees.is_empty() {
            return Err(ModelError::InvalidInput("forest has no trees".into()));
        }
        let built: Vec<DecisionTree> = trees
            .iter()
            .map(|nodes| DecisionTree::from_nodes(nodes.clone(), num_classes))
            .collect::<Result<_>>()?;
        Ok(RandomForest {
            config,
            seed,
            trees: built,
            num_classes,
        })
    }
}

impl Classifier for RandomForest {
    fn fit_weighted(
        &mut self,
        x: &Matrix,
        y: &[usize],
        weights: &[f64],
        num_classes: usize,
    ) -> Result<()> {
        validate_fit(x, y, weights, num_classes)?;
        let n = x.rows();
        let d = x.cols();
        let mtry = self
            .config
            .mtry
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize);
        let tree_cfg = TreeConfig {
            max_depth: self.config.max_depth,
            min_samples_leaf: self.config.min_samples_leaf,
            mtry: Some(mtry.clamp(1, d)),
        };
        let boot_n = ((n as f64) * self.config.sample_fraction).round().max(1.0) as usize;
        // Pre-derive one seed per tree so thread scheduling cannot change
        // the result.
        let seeds: Vec<u64> = {
            let mut rng = SeededRng::new(self.seed);
            (0..self.config.num_trees)
                .map(|_| rng.next_seed())
                .collect()
        };
        // Each tree is a pure function of its pre-derived seed, so the pool
        // cannot change the fitted forest; errors propagate in tree order.
        let threads = self.config.threads.max(1);
        let fitted = par_map(threads, &seeds, |_, &seed| {
            fit_one_tree(x, y, weights, num_classes, &tree_cfg, boot_n, seed)
        });
        self.trees = fitted.into_iter().collect::<Result<Vec<_>>>()?;
        self.num_classes = num_classes;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(!self.trees.is_empty(), "RandomForest: predict before fit");
        let mut out = Matrix::zeros(x.rows(), self.num_classes);
        for tree in &self.trees {
            for r in 0..x.rows() {
                let probs = tree.predict_proba_row(x.row(r));
                let row = out.row_mut(r);
                for (o, &p) in row.iter_mut().zip(probs) {
                    *o += p;
                }
            }
        }
        out.map_inplace(|v| v / self.trees.len() as f64);
        out
    }

    fn name(&self) -> &'static str {
        "rf"
    }

    fn snapshot(&self) -> Result<ClassifierSnapshot> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok(ClassifierSnapshot::Forest {
            config: self.config.clone(),
            seed: self.seed,
            num_classes: self.num_classes,
            trees: self.trees.iter().map(DecisionTree::export_nodes).collect(),
        })
    }
}

fn fit_one_tree(
    x: &Matrix,
    y: &[usize],
    weights: &[f64],
    num_classes: usize,
    cfg: &TreeConfig,
    boot_n: usize,
    seed: u64,
) -> Result<DecisionTree> {
    let mut rng = SeededRng::new(seed);
    let n = x.rows();
    // Weighted bootstrap: sample indices proportionally to the sample
    // weights, so up-weighted target shots appear in more trees.
    let total_w: f64 = weights.iter().sum();
    let uniform = weights.iter().all(|&w| (w - weights[0]).abs() < 1e-12);
    let idx: Vec<usize> = if uniform {
        (0..boot_n).map(|_| rng.index(n)).collect()
    } else {
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cum.push(acc);
        }
        (0..boot_n)
            .map(|_| {
                let u = rng.uniform() * total_w;
                cum.partition_point(|&c| c < u).min(n - 1)
            })
            .collect()
    };
    let bx = x.select_rows(&idx);
    let by: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
    let bw = vec![1.0; by.len()];
    DecisionTree::fit(&bx, &by, &bw, num_classes, cfg, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::macro_f1;

    fn blobs(n_per: usize, classes: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let n = n_per * classes;
        let mut x = Matrix::zeros(n, 5);
        let mut y = Vec::with_capacity(n);
        for c in 0..classes {
            for _ in 0..n_per {
                let r = y.len();
                for j in 0..5 {
                    let center = if j % classes == c { 3.0 } else { 0.0 };
                    x.set(r, j, rng.normal(center, 0.8));
                }
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_blobs() {
        let (x, y) = blobs(40, 3, 1);
        let mut f = RandomForest::new(
            ForestConfig {
                num_trees: 30,
                threads: 2,
                ..ForestConfig::default()
            },
            5,
        );
        f.fit(&x, &y, 3).unwrap();
        assert_eq!(f.num_trees(), 30);
        let pred = f.predict(&x);
        assert!(macro_f1(&y, &pred, 3) > 0.97);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (x, y) = blobs(25, 2, 2);
        let mut seq = RandomForest::new(
            ForestConfig {
                num_trees: 12,
                threads: 1,
                ..ForestConfig::default()
            },
            9,
        );
        let mut par = RandomForest::new(
            ForestConfig {
                num_trees: 12,
                threads: 4,
                ..ForestConfig::default()
            },
            9,
        );
        seq.fit(&x, &y, 2).unwrap();
        par.fit(&x, &y, 2).unwrap();
        assert_eq!(
            seq.predict_proba(&x),
            par.predict_proba(&x),
            "threading must not change output"
        );
    }

    #[test]
    fn weighted_bootstrap_prefers_heavy_samples() {
        // A cloud of class 0 plus few heavy class-1 points at the same spot.
        let mut flat: Vec<f64> = Vec::new();
        let mut y = Vec::new();
        let mut w = Vec::new();
        for i in 0..30 {
            flat.extend_from_slice(&[i as f64 * 0.01, 0.0]);
            y.push(0);
            w.push(1.0);
        }
        for _ in 0..3 {
            flat.extend_from_slice(&[0.15, 0.0]);
            y.push(1);
            w.push(50.0);
        }
        let x = Matrix::from_vec(y.len(), 2, flat);
        let mut f = RandomForest::new(
            ForestConfig {
                num_trees: 25,
                threads: 1,
                ..ForestConfig::default()
            },
            3,
        );
        f.fit_weighted(&x, &y, &w, 2).unwrap();
        let p = f.predict_proba(&Matrix::from_rows(&[&[0.15, 0.0]]));
        assert!(
            p.get(0, 1) > 0.5,
            "heavy minority should win locally: {}",
            p.get(0, 1)
        );
    }

    #[test]
    fn probabilities_rows_sum_to_one() {
        let (x, y) = blobs(15, 2, 3);
        let mut f = RandomForest::new(
            ForestConfig {
                num_trees: 10,
                threads: 2,
                ..ForestConfig::default()
            },
            4,
        );
        f.fit(&x, &y, 2).unwrap();
        let p = f.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let f = RandomForest::new(ForestConfig::default(), 1);
        let _ = f.predict_proba(&Matrix::zeros(1, 2));
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let (x, y) = blobs(15, 2, 6);
        let mut f = RandomForest::new(
            ForestConfig {
                num_trees: 8,
                threads: 2,
                ..ForestConfig::default()
            },
            21,
        );
        f.fit(&x, &y, 2).unwrap();
        let snap = f.snapshot().unwrap();
        let restored = crate::classifier::restore_classifier(&snap).unwrap();
        assert_eq!(restored.predict_proba(&x), f.predict_proba(&x));
        assert_eq!(restored.snapshot().unwrap(), snap);
    }

    #[test]
    fn snapshot_before_fit_is_not_fitted() {
        let f = RandomForest::new(ForestConfig::default(), 1);
        assert!(matches!(f.snapshot(), Err(ModelError::NotFitted)));
    }
}
