//! Gradient-boosted decision trees with the XGBoost second-order objective
//! (softmax multi-class), the "XGB" column of the paper's tables.

use crate::classifier::{validate_fit, Classifier, ClassifierSnapshot};
use crate::tree::{FlatRegNode, RegTreeConfig, RegressionTree};
use crate::{ModelError, Result};
use fsda_linalg::{Matrix, SeededRng};
use fsda_nn::loss::softmax;

/// Hyper-parameters of [`GradientBoosting`].
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtConfig {
    /// Boosting rounds (each round fits one tree per class).
    pub rounds: usize,
    /// Shrinkage (learning rate).
    pub eta: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Row subsample fraction per round.
    pub subsample: f64,
    /// Column subsample fraction per tree.
    pub colsample: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            rounds: 40,
            eta: 0.3,
            max_depth: 5,
            lambda: 1.0,
            min_child_weight: 1.0,
            subsample: 0.9,
            colsample: 0.6,
        }
    }
}

/// Multi-class gradient boosting with softmax objective.
pub struct GradientBoosting {
    config: GbdtConfig,
    seed: u64,
    /// `trees[round][class]`.
    trees: Vec<Vec<RegressionTree>>,
    base_score: Vec<f64>,
    num_classes: usize,
}

impl std::fmt::Debug for GradientBoosting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GradientBoosting")
            .field("config", &self.config)
            .field("rounds_fitted", &self.trees.len())
            .finish()
    }
}

impl GradientBoosting {
    /// Creates an untrained booster.
    pub fn new(config: GbdtConfig, seed: u64) -> Self {
        GradientBoosting {
            config,
            seed,
            trees: Vec::new(),
            base_score: Vec::new(),
            num_classes: 0,
        }
    }

    /// Number of boosting rounds fitted.
    pub fn rounds_fitted(&self) -> usize {
        self.trees.len()
    }

    /// Rebuilds a fitted booster from a snapshot's config, base scores,
    /// and flat trees.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] when the snapshot is empty,
    /// a round does not hold one tree per class, the base-score length
    /// disagrees with `num_classes`, or any tree is malformed.
    pub fn from_snapshot(
        config: GbdtConfig,
        seed: u64,
        num_classes: usize,
        base_score: Vec<f64>,
        trees: &[Vec<Vec<FlatRegNode>>],
    ) -> Result<Self> {
        if trees.is_empty() {
            return Err(ModelError::InvalidInput("booster has no rounds".into()));
        }
        if base_score.len() != num_classes {
            return Err(ModelError::InvalidInput(format!(
                "{} base scores for {num_classes} classes",
                base_score.len()
            )));
        }
        let built: Vec<Vec<RegressionTree>> = trees
            .iter()
            .map(|round| {
                if round.len() != num_classes {
                    return Err(ModelError::InvalidInput(format!(
                        "round holds {} trees for {num_classes} classes",
                        round.len()
                    )));
                }
                round
                    .iter()
                    .map(|nodes| RegressionTree::from_nodes(nodes.clone()))
                    .collect()
            })
            .collect::<Result<_>>()?;
        Ok(GradientBoosting {
            config,
            seed,
            trees: built,
            base_score,
            num_classes,
        })
    }

    fn raw_scores(&self, x: &Matrix) -> Matrix {
        let mut scores = Matrix::zeros(x.rows(), self.num_classes);
        for r in 0..x.rows() {
            scores.row_mut(r).copy_from_slice(&self.base_score);
        }
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                for r in 0..x.rows() {
                    let v = scores.get(r, c) + self.config.eta * tree.predict_row(x.row(r));
                    scores.set(r, c, v);
                }
            }
        }
        scores
    }
}

impl Classifier for GradientBoosting {
    fn fit_weighted(
        &mut self,
        x: &Matrix,
        y: &[usize],
        weights: &[f64],
        num_classes: usize,
    ) -> Result<()> {
        validate_fit(x, y, weights, num_classes)?;
        let n = x.rows();
        let d = x.cols();
        let mut rng = SeededRng::new(self.seed);
        // Base score: log of (weighted) class priors.
        let mut prior = vec![1e-9; num_classes];
        for (&label, &w) in y.iter().zip(weights) {
            prior[label] += w;
        }
        let total: f64 = prior.iter().sum();
        self.base_score = prior.iter().map(|&p| (p / total).ln()).collect();
        self.num_classes = num_classes;
        self.trees.clear();

        let mut scores = Matrix::zeros(n, num_classes);
        for r in 0..n {
            scores.row_mut(r).copy_from_slice(&self.base_score);
        }
        let tree_cfg_base = RegTreeConfig {
            max_depth: self.config.max_depth,
            lambda: self.config.lambda,
            min_child_weight: self.config.min_child_weight,
            gamma: 0.0,
            mtry: Some(((d as f64) * self.config.colsample).ceil().max(1.0) as usize),
        };
        let mut g = vec![0.0; n];
        let mut h = vec![0.0; n];
        for _round in 0..self.config.rounds {
            let probs = softmax(&scores);
            // Row subsample for this round.
            let rows: Vec<usize> = if self.config.subsample < 1.0 {
                let m = ((n as f64) * self.config.subsample).round().max(1.0) as usize;
                rng.sample_indices(n, m)
            } else {
                (0..n).collect()
            };
            let mut round_trees = Vec::with_capacity(num_classes);
            for c in 0..num_classes {
                for r in 0..n {
                    let p = probs.get(r, c);
                    let target = if y[r] == c { 1.0 } else { 0.0 };
                    g[r] = weights[r] * (p - target);
                    h[r] = weights[r] * (p * (1.0 - p)).max(1e-12);
                }
                let tree = RegressionTree::fit(x, &g, &h, &rows, &tree_cfg_base, &mut rng);
                for r in 0..n {
                    let v = scores.get(r, c) + self.config.eta * tree.predict_row(x.row(r));
                    scores.set(r, c, v);
                }
                round_trees.push(tree);
            }
            self.trees.push(round_trees);
        }
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(
            !self.trees.is_empty(),
            "GradientBoosting: predict before fit"
        );
        softmax(&self.raw_scores(x))
    }

    fn name(&self) -> &'static str {
        "xgb"
    }

    fn snapshot(&self) -> Result<ClassifierSnapshot> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok(ClassifierSnapshot::Gbdt {
            config: self.config.clone(),
            seed: self.seed,
            num_classes: self.num_classes,
            base_score: self.base_score.clone(),
            trees: self
                .trees
                .iter()
                .map(|round| round.iter().map(RegressionTree::export_nodes).collect())
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::macro_f1;

    fn blobs(n_per: usize, classes: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let n = n_per * classes;
        let mut x = Matrix::zeros(n, 4);
        let mut y = Vec::with_capacity(n);
        for c in 0..classes {
            for _ in 0..n_per {
                let r = y.len();
                for j in 0..4 {
                    let center = if j % classes == c { 2.5 } else { 0.0 };
                    x.set(r, j, rng.normal(center, 0.7));
                }
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_blobs() {
        let (x, y) = blobs(40, 3, 1);
        let mut m = GradientBoosting::new(
            GbdtConfig {
                rounds: 15,
                ..GbdtConfig::default()
            },
            2,
        );
        m.fit(&x, &y, 3).unwrap();
        assert_eq!(m.rounds_fitted(), 15);
        let pred = m.predict(&x);
        assert!(macro_f1(&y, &pred, 3) > 0.97);
    }

    #[test]
    fn learns_xor_interaction() {
        // Boosted depth-2 trees capture XOR; a linear model could not.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = SeededRng::new(3);
        for _ in 0..200 {
            let a = rng.bernoulli(0.5);
            let b = rng.bernoulli(0.5);
            rows.push([
                f64::from(a) + rng.normal(0.0, 0.1),
                f64::from(b) + rng.normal(0.0, 0.1),
            ]);
            y.push(usize::from(a != b));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut m = GradientBoosting::new(
            GbdtConfig {
                rounds: 20,
                max_depth: 3,
                ..GbdtConfig::default()
            },
            4,
        );
        m.fit(&x, &y, 2).unwrap();
        let pred = m.predict(&x);
        assert!(macro_f1(&y, &pred, 2) > 0.95);
    }

    #[test]
    fn base_score_reflects_priors() {
        // With zero rounds, prediction = class prior.
        let (x, y) = blobs(10, 2, 5);
        let mut m = GradientBoosting::new(
            GbdtConfig {
                rounds: 0,
                ..GbdtConfig::default()
            },
            6,
        );
        m.fit(&x, &y, 2).unwrap();
        // rounds = 0 means trees is empty -> predict panics per contract;
        // check raw base score instead via one fitted round.
        let mut m1 = GradientBoosting::new(
            GbdtConfig {
                rounds: 1,
                ..GbdtConfig::default()
            },
            6,
        );
        m1.fit(&x, &y, 2).unwrap();
        let p = m1.predict_proba(&x);
        assert!(p.is_finite());
    }

    #[test]
    fn weights_steer_probabilities() {
        let x = Matrix::from_rows(&[&[0.0], &[0.0], &[0.0], &[1.0]]);
        let y = vec![0, 1, 1, 0];
        let heavy0 = vec![20.0, 1.0, 1.0, 1.0];
        let mut m = GradientBoosting::new(
            GbdtConfig {
                rounds: 10,
                ..GbdtConfig::default()
            },
            7,
        );
        m.fit_weighted(&x, &y, &heavy0, 2).unwrap();
        let p = m.predict_proba(&Matrix::from_rows(&[&[0.0]]));
        assert!(
            p.get(0, 0) > 0.5,
            "upweighted class 0 should win: {}",
            p.get(0, 0)
        );
    }

    #[test]
    fn probabilities_rows_sum_to_one() {
        let (x, y) = blobs(15, 2, 8);
        let mut m = GradientBoosting::new(
            GbdtConfig {
                rounds: 5,
                ..GbdtConfig::default()
            },
            9,
        );
        m.fit(&x, &y, 2).unwrap();
        let p = m.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(10, 2, 10);
        let cfg = GbdtConfig {
            rounds: 4,
            ..GbdtConfig::default()
        };
        let mut a = GradientBoosting::new(cfg.clone(), 11);
        let mut b = GradientBoosting::new(cfg, 11);
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let (x, y) = blobs(15, 3, 12);
        let mut m = GradientBoosting::new(
            GbdtConfig {
                rounds: 5,
                ..GbdtConfig::default()
            },
            23,
        );
        m.fit(&x, &y, 3).unwrap();
        let snap = m.snapshot().unwrap();
        let restored = crate::classifier::restore_classifier(&snap).unwrap();
        assert_eq!(restored.predict_proba(&x), m.predict_proba(&x));
        assert_eq!(restored.snapshot().unwrap(), snap);
    }

    #[test]
    fn snapshot_before_fit_is_not_fitted() {
        let m = GradientBoosting::new(GbdtConfig::default(), 1);
        assert!(matches!(m.snapshot(), Err(ModelError::NotFitted)));
    }
}
