//! Network-management classifiers and evaluation metrics.
//!
//! The paper's DA methods are *model-agnostic*: they are evaluated with four
//! classifier families — TNet (a deep tabular network), MLP, random forest,
//! and XGBoost-style gradient boosting. This crate implements all four from
//! scratch behind one [`Classifier`] trait (weighted fitting included, which
//! the S&T baseline needs), plus the embedding network used by the
//! MatchNet/ProtoNet few-shot baselines and the F1 metrics the paper
//! reports.
//!
//! # Example
//!
//! ```
//! use fsda_linalg::Matrix;
//! use fsda_models::{Classifier, classifier::ClassifierKind, metrics::macro_f1};
//!
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.1, 0.0], &[5.0, 5.0], &[5.1, 5.0]]);
//! let y = vec![0, 0, 1, 1];
//! let mut model = ClassifierKind::RandomForest.build(42);
//! model.fit(&x, &y, 2)?;
//! let pred = model.predict(&x);
//! assert!(macro_f1(&y, &pred, 2) > 0.99);
//! # Ok::<(), fsda_models::ModelError>(())
//! ```

#![warn(missing_docs)]

pub mod classifier;
pub mod embedding;
pub mod forest;
pub mod gbdt;
pub mod metrics;
pub mod mlp;
pub mod tnet;
pub mod tree;

pub use classifier::{restore_classifier, Classifier, ClassifierKind, ClassifierSnapshot};
pub use fsda_nn::InferPrecision;

/// Errors raised by model training and prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Features/labels disagree or are empty.
    InvalidInput(String),
    /// Prediction was requested before `fit`.
    NotFitted,
    /// Numeric failure during training.
    Numeric(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ModelError::NotFitted => write!(f, "model is not fitted"),
            ModelError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!ModelError::NotFitted.to_string().is_empty());
        assert!(ModelError::InvalidInput("x".into())
            .to_string()
            .contains('x'));
    }
}
