//! Evaluation metrics: the macro-averaged F1 the paper reports, plus the
//! per-class quantities behind it.

use fsda_linalg::Matrix;

/// Confusion matrix: `m[true][pred]` counts.
///
/// # Panics
///
/// Panics if the label slices have different lengths or contain labels
/// `>= num_classes`.
pub fn confusion_matrix(y_true: &[usize], y_pred: &[usize], num_classes: usize) -> Matrix {
    assert_eq!(
        y_true.len(),
        y_pred.len(),
        "confusion_matrix: length mismatch"
    );
    let mut m = Matrix::zeros(num_classes, num_classes);
    for (&t, &p) in y_true.iter().zip(y_pred) {
        assert!(t < num_classes && p < num_classes, "label out of range");
        m.set(t, p, m.get(t, p) + 1.0);
    }
    m
}

/// Per-class precision, recall, and F1.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassScores {
    /// Precision per class (0 when the class was never predicted).
    pub precision: Vec<f64>,
    /// Recall per class (0 when the class never occurs).
    pub recall: Vec<f64>,
    /// F1 per class.
    pub f1: Vec<f64>,
    /// True-sample count per class.
    pub support: Vec<usize>,
}

/// Computes per-class precision/recall/F1 from predictions.
///
/// # Panics
///
/// As [`confusion_matrix`].
pub fn class_scores(y_true: &[usize], y_pred: &[usize], num_classes: usize) -> ClassScores {
    let cm = confusion_matrix(y_true, y_pred, num_classes);
    let mut precision = vec![0.0; num_classes];
    let mut recall = vec![0.0; num_classes];
    let mut f1 = vec![0.0; num_classes];
    let mut support = vec![0usize; num_classes];
    for c in 0..num_classes {
        let tp = cm.get(c, c);
        let pred_c: f64 = (0..num_classes).map(|t| cm.get(t, c)).sum();
        let true_c: f64 = (0..num_classes).map(|p| cm.get(c, p)).sum();
        support[c] = true_c as usize;
        precision[c] = if pred_c > 0.0 { tp / pred_c } else { 0.0 };
        recall[c] = if true_c > 0.0 { tp / true_c } else { 0.0 };
        let denom = precision[c] + recall[c];
        f1[c] = if denom > 0.0 {
            2.0 * precision[c] * recall[c] / denom
        } else {
            0.0
        };
    }
    ClassScores {
        precision,
        recall,
        f1,
        support,
    }
}

/// Macro-averaged F1 over the classes that actually occur in `y_true`.
///
/// The paper reports F1 scores in `[0, 100]`-style percentages; this
/// function returns the `[0, 1]` value — multiply by 100 for table output.
///
/// Zero-support classes — present in `y_pred` but absent from `y_true` —
/// are excluded from the average rather than contributing a `0/0`
/// division, and an empty input returns `0.0`; the result is always
/// finite, so a degenerate evaluation batch can never leak NaN into a
/// report.
///
/// # Panics
///
/// As [`confusion_matrix`].
pub fn macro_f1(y_true: &[usize], y_pred: &[usize], num_classes: usize) -> f64 {
    let scores = class_scores(y_true, y_pred, num_classes);
    let mut sum = 0.0;
    let mut count = 0usize;
    for c in 0..num_classes {
        if scores.support[c] > 0 {
            sum += scores.f1[c];
            count += 1;
        }
    }
    if count == 0 {
        return 0.0;
    }
    sum / count as f64
}

/// Plain accuracy. An empty input returns `0.0` (not the `0/0` NaN a
/// naive hits/total would produce), so empty evaluation slices are safe
/// to aggregate.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "accuracy: length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let hits = y_true.iter().zip(y_pred).filter(|(&t, &p)| t == p).count();
    hits as f64 / y_true.len() as f64
}

/// Weighted (by support) F1 — occasionally useful alongside the macro
/// value; the paper's tables are macro-F1.
///
/// # Panics
///
/// As [`confusion_matrix`].
pub fn weighted_f1(y_true: &[usize], y_pred: &[usize], num_classes: usize) -> f64 {
    let scores = class_scores(y_true, y_pred, num_classes);
    let total: usize = scores.support.iter().sum();
    if total == 0 {
        return 0.0;
    }
    scores
        .f1
        .iter()
        .zip(&scores.support)
        .map(|(&f, &s)| f * s as f64)
        .sum::<f64>()
        / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts() {
        let cm = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(cm.get(0, 0), 1.0);
        assert_eq!(cm.get(0, 1), 1.0);
        assert_eq!(cm.get(1, 1), 2.0);
        assert_eq!(cm.get(1, 0), 0.0);
    }

    #[test]
    fn perfect_prediction_is_one() {
        let y = vec![0, 1, 2, 0, 1, 2];
        assert_eq!(macro_f1(&y, &y, 3), 1.0);
        assert_eq!(accuracy(&y, &y), 1.0);
        assert_eq!(weighted_f1(&y, &y, 3), 1.0);
    }

    #[test]
    fn always_wrong_is_zero() {
        let y_true = vec![0, 0, 1, 1];
        let y_pred = vec![1, 1, 0, 0];
        assert_eq!(macro_f1(&y_true, &y_pred, 2), 0.0);
        assert_eq!(accuracy(&y_true, &y_pred), 0.0);
    }

    #[test]
    fn macro_f1_hand_computed() {
        // Class 0: tp=2, fp=1, fn=0 => p=2/3, r=1, f1=0.8.
        // Class 1: tp=1, fp=0, fn=1 => p=1, r=0.5, f1=2/3.
        let y_true = vec![0, 0, 1, 1];
        let y_pred = vec![0, 0, 0, 1];
        let f1 = macro_f1(&y_true, &y_pred, 2);
        assert!((f1 - (0.8 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        // Class 2 never occurs in y_true: it must not drag the average down.
        let y_true = vec![0, 1];
        let y_pred = vec![0, 1];
        assert_eq!(macro_f1(&y_true, &y_pred, 3), 1.0);
    }

    #[test]
    fn unpredicted_class_gets_zero_precision() {
        let scores = class_scores(&[0, 1], &[0, 0], 2);
        assert_eq!(scores.precision[1], 0.0);
        assert_eq!(scores.recall[1], 0.0);
        assert_eq!(scores.f1[1], 0.0);
        assert_eq!(scores.support, vec![1, 1]);
    }

    #[test]
    fn weighted_f1_reflects_support() {
        // Majority class correct, minority wrong: weighted > macro.
        let y_true = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let y_pred = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(weighted_f1(&y_true, &y_pred, 2) > macro_f1(&y_true, &y_pred, 2));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(macro_f1(&[], &[], 3), 0.0);
    }

    // Regression: accuracy on an empty slice must be a well-defined finite
    // value, not the NaN of a naive hits/len division.
    #[test]
    fn accuracy_empty_slice_is_finite_zero() {
        let acc = accuracy(&[], &[]);
        assert!(acc.is_finite(), "empty accuracy must not be NaN");
        assert_eq!(acc, 0.0);
    }

    // Regression: a class present only in y_pred has zero support in
    // y_true; its 0/0 precision-recall cell must not propagate NaN into
    // the macro average (or the weighted one).
    #[test]
    fn macro_f1_pred_only_class_is_finite() {
        let y_true = vec![0, 0, 0];
        let y_pred = vec![1, 1, 1]; // class 1 never occurs in y_true
        let f1 = macro_f1(&y_true, &y_pred, 2);
        assert!(f1.is_finite(), "zero-support class must not yield NaN");
        assert_eq!(f1, 0.0, "only class 0 counts, and it was never hit");
        let wf1 = weighted_f1(&y_true, &y_pred, 2);
        assert!(wf1.is_finite());
        assert_eq!(wf1, 0.0);
        // Every per-class score stays finite too.
        let scores = class_scores(&y_true, &y_pred, 2);
        assert!(scores.precision.iter().all(|v| v.is_finite()));
        assert!(scores.recall.iter().all(|v| v.is_finite()));
        assert!(scores.f1.iter().all(|v| v.is_finite()));
        assert_eq!(scores.support, vec![3, 0]);
    }

    // Regression companion: the all-empty num_classes=0 corner.
    #[test]
    fn zero_classes_never_divides() {
        assert_eq!(macro_f1(&[], &[], 0), 0.0);
        assert_eq!(weighted_f1(&[], &[], 0), 0.0);
    }
}
