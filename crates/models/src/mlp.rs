//! Multilayer-perceptron classifier.

use crate::classifier::{validate_fit, Classifier, ClassifierSnapshot};
use crate::{ModelError, Result};
use fsda_linalg::{Matrix, SeededRng};
use fsda_nn::layer::{Activation, Dense};
use fsda_nn::loss::{softmax, weighted_cross_entropy};
use fsda_nn::optim::{Adam, Optimizer};
use fsda_nn::state::{export_state, load_state, StateDict};
use fsda_nn::train::BatchIter;
use fsda_nn::{InferPlan, InferPrecision, Sequential};

/// Hyper-parameters of the [`MlpClassifier`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![128, 64],
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            weight_decay: 1e-5,
        }
    }
}

/// A plain fully-connected classifier (`Dense → ReLU` stacks with a linear
/// softmax head), the "MLP" column of the paper's tables.
pub struct MlpClassifier {
    config: MlpConfig,
    seed: u64,
    net: Option<Sequential>,
    /// Compiled inference plan over `net`, rebuilt whenever the weights
    /// change (fit, fine-tune, snapshot restore). Never persisted.
    plan: Option<InferPlan>,
    num_classes: usize,
}

impl std::fmt::Debug for MlpClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MlpClassifier")
            .field("config", &self.config)
            .field("fitted", &self.net.is_some())
            .finish()
    }
}

impl MlpClassifier {
    /// Creates an untrained classifier.
    pub fn new(config: MlpConfig, seed: u64) -> Self {
        MlpClassifier {
            config,
            seed,
            net: None,
            plan: None,
            num_classes: 0,
        }
    }

    fn build_net(&self, in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Sequential {
        let mut net = Sequential::new();
        let mut prev = in_dim;
        for &h in &self.config.hidden {
            net.push(Dense::new(prev, h, rng));
            net.push(Activation::relu());
            prev = h;
        }
        net.push(Dense::new(prev, out_dim, rng));
        net
    }

    /// Rebuilds a fitted classifier from a snapshot's config, dims, and
    /// network state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] when the state does not match
    /// the architecture the config describes.
    pub fn from_snapshot(
        config: MlpConfig,
        seed: u64,
        in_dim: usize,
        num_classes: usize,
        state: &StateDict,
    ) -> Result<Self> {
        let mut clf = MlpClassifier::new(config, seed);
        let mut rng = SeededRng::new(seed);
        let mut net = clf.build_net(in_dim, num_classes, &mut rng);
        load_state(&mut net, state).map_err(ModelError::InvalidInput)?;
        clf.plan = InferPlan::compile(&net).ok();
        clf.net = Some(net);
        clf.num_classes = num_classes;
        Ok(clf)
    }

    /// Fine-tunes all parameters on new data (used by the Fine-Tune
    /// baseline, which the paper applies to the MLP only). Re-optimizes
    /// every layer, matching the paper's finding that full re-optimization
    /// beats last-layer-only updates.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::NotFitted`] when called before `fit`
    /// and [`crate::ModelError::InvalidInput`] on shape problems.
    pub fn fine_tune(
        &mut self,
        x: &Matrix,
        y: &[usize],
        epochs: usize,
        learning_rate: f64,
    ) -> Result<()> {
        let num_classes = self.num_classes;
        let weights = vec![1.0; y.len()];
        validate_fit(x, y, &weights, num_classes)?;
        let net = self.net.as_mut().ok_or(crate::ModelError::NotFitted)?;
        let mut rng = SeededRng::new(self.seed ^ 0xF1E7);
        let mut opt = Adam::with_decay(learning_rate, 0.0);
        for _ in 0..epochs {
            for batch in BatchIter::new(x.rows(), self.config.batch_size.min(x.rows()), &mut rng) {
                let bx = x.select_rows(&batch);
                let by: Vec<usize> = batch.iter().map(|&i| y[i]).collect();
                let bw = vec![1.0; by.len()];
                let logits = net.forward(&bx, true);
                let (_, grad) = weighted_cross_entropy(&logits, &by, &bw);
                net.zero_grad();
                net.backward(&grad);
                opt.step(&mut net.params_mut());
            }
        }
        self.plan = self.net.as_ref().and_then(|n| InferPlan::compile(n).ok());
        Ok(())
    }

    fn run_net(&self, net: &Sequential, x: &Matrix, precision: InferPrecision) -> Matrix {
        match &self.plan {
            Some(plan) => plan.infer(x, precision),
            None => net.infer(x),
        }
    }
}

impl Classifier for MlpClassifier {
    fn fit_weighted(
        &mut self,
        x: &Matrix,
        y: &[usize],
        weights: &[f64],
        num_classes: usize,
    ) -> Result<()> {
        validate_fit(x, y, weights, num_classes)?;
        let mut rng = SeededRng::new(self.seed);
        let mut net = self.build_net(x.cols(), num_classes, &mut rng);
        let mut opt = Adam::with_decay(self.config.learning_rate, self.config.weight_decay);
        for _ in 0..self.config.epochs {
            for batch in BatchIter::new(x.rows(), self.config.batch_size.min(x.rows()), &mut rng) {
                let bx = x.select_rows(&batch);
                let by: Vec<usize> = batch.iter().map(|&i| y[i]).collect();
                let bw: Vec<f64> = batch.iter().map(|&i| weights[i]).collect();
                let logits = net.forward(&bx, true);
                let (_, grad) = weighted_cross_entropy(&logits, &by, &bw);
                net.zero_grad();
                net.backward(&grad);
                opt.step(&mut net.params_mut());
            }
        }
        self.plan = InferPlan::compile(&net).ok();
        self.net = Some(net);
        self.num_classes = num_classes;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        self.predict_proba_with(x, InferPrecision::F64Exact)
    }

    fn predict_proba_with(&self, x: &Matrix, precision: InferPrecision) -> Matrix {
        let net = self
            .net
            .as_ref()
            .expect("MlpClassifier: predict before fit");
        softmax(&self.run_net(net, x, precision))
    }

    fn name(&self) -> &'static str {
        "mlp"
    }

    fn snapshot(&self) -> Result<ClassifierSnapshot> {
        let net = self.net.as_ref().ok_or(ModelError::NotFitted)?;
        Ok(ClassifierSnapshot::Mlp {
            config: self.config.clone(),
            seed: self.seed,
            in_dim: net.params()[0].cols(),
            num_classes: self.num_classes,
            state: export_state(net),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::macro_f1;

    fn blobs(n_per: usize, classes: usize, sep: f64, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let n = n_per * classes;
        let mut x = Matrix::zeros(n, 4);
        let mut y = Vec::with_capacity(n);
        for c in 0..classes {
            for _ in 0..n_per {
                let r = y.len();
                for j in 0..4 {
                    let center = if j % classes == c { sep } else { 0.0 };
                    x.set(r, j, rng.normal(center, 0.6));
                }
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(40, 3, 2.5, 1);
        let mut m = MlpClassifier::new(
            MlpConfig {
                epochs: 40,
                ..MlpConfig::default()
            },
            7,
        );
        m.fit(&x, &y, 3).unwrap();
        let pred = m.predict(&x);
        assert!(macro_f1(&y, &pred, 3) > 0.95);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = blobs(20, 2, 2.0, 2);
        let mut m = MlpClassifier::new(
            MlpConfig {
                epochs: 10,
                ..MlpConfig::default()
            },
            3,
        );
        m.fit(&x, &y, 2).unwrap();
        let p = m.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_fit_prioritizes_heavy_samples() {
        // Two contradictory labelings of the same region; the heavy samples win.
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.1], &[1.1, 0.0], &[0.9, 0.05]]);
        let y = vec![0, 0, 1, 1];
        let w = vec![0.01, 0.01, 10.0, 10.0];
        let mut m = MlpClassifier::new(
            MlpConfig {
                epochs: 120,
                ..MlpConfig::default()
            },
            5,
        );
        m.fit_weighted(&x, &y, &w, 2).unwrap();
        let pred = m.predict(&Matrix::from_rows(&[&[1.0, 0.05]]));
        assert_eq!(pred[0], 1, "heavily weighted class should dominate");
    }

    #[test]
    fn fine_tune_moves_decision() {
        let (x, y) = blobs(30, 2, 2.0, 3);
        let mut m = MlpClassifier::new(
            MlpConfig {
                epochs: 30,
                ..MlpConfig::default()
            },
            11,
        );
        m.fit(&x, &y, 2).unwrap();
        // Fine-tune with flipped labels; predictions should flip too.
        let flipped: Vec<usize> = y.iter().map(|&c| 1 - c).collect();
        m.fine_tune(&x, &flipped, 60, 1e-3).unwrap();
        let pred = m.predict(&x);
        assert!(macro_f1(&flipped, &pred, 2) > 0.9);
    }

    #[test]
    fn fine_tune_requires_fit() {
        let mut m = MlpClassifier::new(MlpConfig::default(), 1);
        let x = Matrix::zeros(2, 2);
        assert!(m.fine_tune(&x, &[0, 1], 1, 1e-3).is_err());
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let m = MlpClassifier::new(MlpConfig::default(), 1);
        let _ = m.predict_proba(&Matrix::zeros(1, 2));
    }

    #[test]
    fn rejects_invalid_input() {
        let mut m = MlpClassifier::new(MlpConfig::default(), 1);
        assert!(m.fit(&Matrix::zeros(2, 2), &[0, 9], 2).is_err());
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let (x, y) = blobs(15, 3, 2.0, 7);
        let mut m = MlpClassifier::new(
            MlpConfig {
                epochs: 6,
                ..MlpConfig::default()
            },
            17,
        );
        m.fit(&x, &y, 3).unwrap();
        let snap = m.snapshot().unwrap();
        let restored = crate::classifier::restore_classifier(&snap).unwrap();
        assert_eq!(restored.predict_proba(&x), m.predict_proba(&x));
        assert_eq!(restored.snapshot().unwrap(), snap);
    }

    #[test]
    fn snapshot_before_fit_is_not_fitted() {
        let m = MlpClassifier::new(MlpConfig::default(), 1);
        assert!(matches!(m.snapshot(), Err(ModelError::NotFitted)));
    }
}
