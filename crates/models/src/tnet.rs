//! TNet: a deep tabular network with batch-normalized residual blocks.
//!
//! The paper's strongest classifier is "TNet" (TabularNet, Du et al. 2021),
//! a neural architecture for semantic structure in tabular data. At the
//! scale of these datasets its essential ingredients are dense residual
//! blocks with batch normalization and dropout; this implementation
//! provides exactly that: `x → [Dense-BN-ReLU-Drop] → h1 →
//! [Dense-BN-ReLU-Drop] → h2`, classify on `h1 + h2`. Consistent with the
//! paper, it modestly but consistently outperforms the plain MLP.

use crate::classifier::{validate_fit, Classifier, ClassifierSnapshot};
use crate::{ModelError, Result};
use fsda_linalg::{Matrix, SeededRng};
use fsda_nn::layer::{Activation, Dense};
use fsda_nn::loss::{softmax, weighted_cross_entropy};
use fsda_nn::norm::{BatchNorm1d, Dropout};
use fsda_nn::optim::{Adam, Optimizer};
use fsda_nn::state::StateDict;
use fsda_nn::train::BatchIter;
use fsda_nn::{InferPlan, InferPrecision, Layer, Sequential};

/// Hyper-parameters of [`TnetClassifier`].
#[derive(Debug, Clone, PartialEq)]
pub struct TnetConfig {
    /// Width of the residual trunk.
    pub hidden: usize,
    /// Dropout probability inside the blocks.
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
}

impl Default for TnetConfig {
    fn default() -> Self {
        TnetConfig {
            hidden: 128,
            dropout: 0.1,
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            weight_decay: 1e-5,
        }
    }
}

struct TnetNet {
    block1: Sequential,
    block2: Sequential,
    head: Dense,
}

impl TnetNet {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let h1 = self.block1.forward(x, train);
        let h2 = self.block2.forward(&h1, train);
        let res = h1.try_add(&h2).expect("residual shapes match");
        self.head.forward(&res, train)
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        let h1 = self.block1.infer(x);
        let h2 = self.block2.infer(&h1);
        let res = h1.try_add(&h2).expect("residual shapes match");
        self.head.infer(&res)
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        let grad_res = self.head.backward(grad_logits);
        // res = h1 + h2: gradient flows to both the block-2 output and,
        // via the skip connection, directly to h1.
        let grad_h1_through_block2 = self.block2.backward(&grad_res);
        let grad_h1 = grad_res
            .try_add(&grad_h1_through_block2)
            .expect("residual shapes match");
        self.block1.backward(&grad_h1);
    }

    fn zero_grad(&mut self) {
        self.block1.zero_grad();
        self.block2.zero_grad();
        self.head.zero_grad();
    }

    fn params_mut(&mut self) -> Vec<fsda_nn::Param<'_>> {
        let mut p = self.block1.params_mut();
        p.extend(self.block2.params_mut());
        p.extend(self.head.params_mut());
        p
    }

    /// Snapshot of all weights and batch-norm buffers, in the stable order
    /// block1, block2, head.
    fn export(&self) -> StateDict {
        let mut tensors: Vec<Matrix> = Vec::new();
        let mut buffers: Vec<Matrix> = Vec::new();
        for block in [&self.block1, &self.block2] {
            tensors.extend(block.params().iter().map(|p| (*p).clone()));
            buffers.extend(
                block
                    .buffers()
                    .iter()
                    .map(|b| Matrix::from_vec(1, b.len(), b.to_vec())),
            );
        }
        tensors.extend(self.head.params().iter().map(|p| (*p).clone()));
        StateDict::from_parts(tensors, buffers)
    }

    /// Restores weights and buffers exported by [`TnetNet::export`].
    fn load(&mut self, state: &StateDict) -> std::result::Result<(), String> {
        let mut params = self.block1.params_mut();
        params.extend(self.block2.params_mut());
        params.extend(self.head.params_mut());
        if params.len() != state.tensors().len() {
            return Err(format!(
                "state dict has {} tensors but the network has {} parameters",
                state.tensors().len(),
                params.len()
            ));
        }
        for (i, (param, tensor)) in params.iter().zip(state.tensors()).enumerate() {
            if param.value.shape() != tensor.shape() {
                return Err(format!(
                    "tensor {i}: shape {:?} does not match parameter shape {:?}",
                    tensor.shape(),
                    param.value.shape()
                ));
            }
        }
        for (param, tensor) in params.iter_mut().zip(state.tensors()) {
            *param.value = tensor.clone();
        }
        drop(params);
        let mut buffers = self.block1.buffers_mut();
        buffers.extend(self.block2.buffers_mut());
        if buffers.len() != state.buffers().len() {
            return Err(format!(
                "state dict has {} buffers but the network has {}",
                state.buffers().len(),
                buffers.len()
            ));
        }
        for (i, (dst, src)) in buffers.iter().zip(state.buffers()).enumerate() {
            if dst.len() != src.cols() {
                return Err(format!(
                    "buffer {i}: length {} does not match network buffer length {}",
                    src.cols(),
                    dst.len()
                ));
            }
        }
        for (dst, src) in buffers.iter_mut().zip(state.buffers()) {
            dst.copy_from_slice(src.as_slice());
        }
        Ok(())
    }
}

/// Compiled inference plans for the three parts of [`TnetNet`]. The
/// residual addition between the blocks always runs in `f64`, so the
/// kernel precision only affects the dense/batch-norm stages.
struct TnetPlans {
    block1: InferPlan,
    block2: InferPlan,
    head: InferPlan,
}

impl TnetPlans {
    fn compile(net: &TnetNet) -> Option<Self> {
        Some(TnetPlans {
            block1: InferPlan::compile(&net.block1).ok()?,
            block2: InferPlan::compile(&net.block2).ok()?,
            head: InferPlan::compile_layer(&net.head).ok()?,
        })
    }

    fn infer(&self, x: &Matrix, precision: InferPrecision) -> Matrix {
        let h1 = self.block1.infer(x, precision);
        let h2 = self.block2.infer(&h1, precision);
        let res = h1.try_add(&h2).expect("residual shapes match");
        self.head.infer(&res, precision)
    }
}

/// The TNet classifier.
pub struct TnetClassifier {
    config: TnetConfig,
    seed: u64,
    net: Option<TnetNet>,
    /// Compiled inference plans over `net`, rebuilt whenever the weights
    /// change (fit, snapshot restore). Never persisted.
    plans: Option<TnetPlans>,
    num_classes: usize,
}

impl std::fmt::Debug for TnetClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TnetClassifier")
            .field("config", &self.config)
            .field("fitted", &self.net.is_some())
            .finish()
    }
}

impl TnetClassifier {
    /// Creates an untrained classifier.
    pub fn new(config: TnetConfig, seed: u64) -> Self {
        TnetClassifier {
            config,
            seed,
            net: None,
            plans: None,
            num_classes: 0,
        }
    }

    fn build(&self, in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> TnetNet {
        let h = self.config.hidden;
        let block = |in_d: usize, rng: &mut SeededRng| {
            let mut s = Sequential::new();
            s.push(Dense::new(in_d, h, rng));
            s.push(BatchNorm1d::new(h));
            s.push(Activation::relu());
            s.push(Dropout::new(self.config.dropout, rng.fork(0xD0)));
            s
        };
        TnetNet {
            block1: block(in_dim, rng),
            block2: block(h, rng),
            head: Dense::new(h, out_dim, rng),
        }
    }

    /// Rebuilds a fitted classifier from a snapshot's config, dims, and
    /// network state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] when the state does not match
    /// the architecture the config describes.
    pub fn from_snapshot(
        config: TnetConfig,
        seed: u64,
        in_dim: usize,
        num_classes: usize,
        state: &StateDict,
    ) -> Result<Self> {
        let mut clf = TnetClassifier::new(config, seed);
        let mut rng = SeededRng::new(seed);
        let mut net = clf.build(in_dim, num_classes, &mut rng);
        net.load(state).map_err(ModelError::InvalidInput)?;
        clf.plans = TnetPlans::compile(&net);
        clf.net = Some(net);
        clf.num_classes = num_classes;
        Ok(clf)
    }
}

impl Classifier for TnetClassifier {
    fn fit_weighted(
        &mut self,
        x: &Matrix,
        y: &[usize],
        weights: &[f64],
        num_classes: usize,
    ) -> Result<()> {
        validate_fit(x, y, weights, num_classes)?;
        let mut rng = SeededRng::new(self.seed);
        let mut net = self.build(x.cols(), num_classes, &mut rng);
        let mut opt = Adam::with_decay(self.config.learning_rate, self.config.weight_decay);
        for _ in 0..self.config.epochs {
            for batch in BatchIter::new(x.rows(), self.config.batch_size.min(x.rows()), &mut rng) {
                // Batch norm needs more than one sample per batch.
                if batch.len() < 2 && x.rows() > 1 {
                    continue;
                }
                let bx = x.select_rows(&batch);
                let by: Vec<usize> = batch.iter().map(|&i| y[i]).collect();
                let bw: Vec<f64> = batch.iter().map(|&i| weights[i]).collect();
                let logits = net.forward(&bx, true);
                let (_, grad) = weighted_cross_entropy(&logits, &by, &bw);
                net.zero_grad();
                net.backward(&grad);
                opt.step(&mut net.params_mut());
            }
        }
        self.plans = TnetPlans::compile(&net);
        self.net = Some(net);
        self.num_classes = num_classes;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        self.predict_proba_with(x, InferPrecision::F64Exact)
    }

    fn predict_proba_with(&self, x: &Matrix, precision: InferPrecision) -> Matrix {
        let net = self
            .net
            .as_ref()
            .expect("TnetClassifier: predict before fit");
        let logits = match &self.plans {
            Some(plans) => plans.infer(x, precision),
            None => net.infer(x),
        };
        softmax(&logits)
    }

    fn name(&self) -> &'static str {
        "tnet"
    }

    fn snapshot(&self) -> Result<ClassifierSnapshot> {
        let net = self.net.as_ref().ok_or(ModelError::NotFitted)?;
        Ok(ClassifierSnapshot::Tnet {
            config: self.config.clone(),
            seed: self.seed,
            in_dim: net.block1.params()[0].cols(),
            num_classes: self.num_classes,
            state: net.export(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::macro_f1;

    fn blobs(n_per: usize, classes: usize, sep: f64, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let n = n_per * classes;
        let mut x = Matrix::zeros(n, 6);
        let mut y = Vec::with_capacity(n);
        for c in 0..classes {
            for _ in 0..n_per {
                let r = y.len();
                for j in 0..6 {
                    let center = if j % classes == c { sep } else { 0.0 };
                    x.set(r, j, rng.normal(center, 0.7));
                }
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_blobs() {
        let (x, y) = blobs(40, 4, 2.5, 1);
        let mut m = TnetClassifier::new(
            TnetConfig {
                epochs: 40,
                ..TnetConfig::default()
            },
            3,
        );
        m.fit(&x, &y, 4).unwrap();
        let pred = m.predict(&x);
        assert!(
            macro_f1(&y, &pred, 4) > 0.95,
            "f1 {}",
            macro_f1(&y, &pred, 4)
        );
    }

    #[test]
    fn probabilities_are_normalized() {
        let (x, y) = blobs(15, 2, 2.0, 2);
        let mut m = TnetClassifier::new(
            TnetConfig {
                epochs: 8,
                ..TnetConfig::default()
            },
            4,
        );
        m.fit(&x, &y, 2).unwrap();
        let p = m.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(15, 2, 2.0, 5);
        let cfg = TnetConfig {
            epochs: 5,
            ..TnetConfig::default()
        };
        let mut a = TnetClassifier::new(cfg.clone(), 9);
        let mut b = TnetClassifier::new(cfg, 9);
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn rejects_bad_input() {
        let mut m = TnetClassifier::new(TnetConfig::default(), 1);
        assert!(m.fit(&Matrix::zeros(3, 2), &[0, 1], 2).is_err());
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let (x, y) = blobs(15, 2, 2.0, 6);
        let mut m = TnetClassifier::new(
            TnetConfig {
                epochs: 6,
                ..TnetConfig::default()
            },
            13,
        );
        m.fit(&x, &y, 2).unwrap();
        let snap = m.snapshot().unwrap();
        let restored = crate::classifier::restore_classifier(&snap).unwrap();
        assert_eq!(restored.predict_proba(&x), m.predict_proba(&x));
        assert_eq!(restored.snapshot().unwrap(), snap);
    }

    #[test]
    fn snapshot_before_fit_is_not_fitted() {
        let m = TnetClassifier::new(TnetConfig::default(), 1);
        assert!(matches!(m.snapshot(), Err(ModelError::NotFitted)));
    }
}
