//! Weighted CART decision trees (Gini impurity), the building block of the
//! random forest and — in regression form — of gradient boosting.

use crate::classifier::validate_fit;
use crate::{ModelError, Result};
use fsda_linalg::{Matrix, SeededRng};

/// Hyper-parameters for a single classification tree.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum (weighted) samples required in a leaf.
    pub min_samples_leaf: usize,
    /// Number of features examined per split; `None` uses all features
    /// (forests use `sqrt(d)`).
    pub mtry: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 16,
            min_samples_leaf: 2,
            mtry: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        probs: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A [`DecisionTree`] node in serializable form: the tree's arena layout
/// made public, with child links as indices into the flat node list (the
/// root is node 0).
#[derive(Debug, Clone, PartialEq)]
pub enum FlatNode {
    /// Terminal node holding per-class probabilities.
    Leaf {
        /// Class-probability vector (length = `num_classes`).
        probs: Vec<f64>,
    },
    /// Internal split `row[feature] <= threshold ? left : right`.
    Split {
        /// Feature column tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Index of the left child.
        left: usize,
        /// Index of the right child.
        right: usize,
    },
}

/// A [`RegressionTree`] node in serializable form (same arena layout as
/// [`FlatNode`], with scalar leaf values).
#[derive(Debug, Clone, PartialEq)]
pub enum FlatRegNode {
    /// Terminal node holding the predicted value.
    Leaf {
        /// Leaf output value.
        value: f64,
    },
    /// Internal split `row[feature] <= threshold ? left : right`.
    Split {
        /// Feature column tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Index of the left child.
        left: usize,
        /// Index of the right child.
        right: usize,
    },
}

/// A fitted CART classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_classes: usize,
}

impl DecisionTree {
    /// Fits a tree on weighted samples.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidInput`] on malformed inputs.
    pub fn fit(
        x: &Matrix,
        y: &[usize],
        weights: &[f64],
        num_classes: usize,
        config: &TreeConfig,
        rng: &mut SeededRng,
    ) -> Result<Self> {
        validate_fit(x, y, weights, num_classes)?;
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            num_classes,
        };
        let indices: Vec<usize> = (0..x.rows()).collect();
        tree.grow(x, y, weights, &indices, 0, config, rng);
        Ok(tree)
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Exports the tree as flat serializable nodes (root at index 0).
    pub fn export_nodes(&self) -> Vec<FlatNode> {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { probs } => FlatNode::Leaf {
                    probs: probs.clone(),
                },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => FlatNode::Split {
                    feature: *feature,
                    threshold: *threshold,
                    left: *left,
                    right: *right,
                },
            })
            .collect()
    }

    /// Rebuilds a tree from flat nodes produced by
    /// [`DecisionTree::export_nodes`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] when the node list is empty,
    /// a child index is out of bounds, or a leaf's probability vector does
    /// not have `num_classes` entries — any of which would make prediction
    /// panic or return garbage.
    pub fn from_nodes(nodes: Vec<FlatNode>, num_classes: usize) -> Result<Self> {
        if nodes.is_empty() {
            return Err(ModelError::InvalidInput("tree has no nodes".into()));
        }
        let n = nodes.len();
        let built: Vec<Node> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, node)| match node {
                FlatNode::Leaf { probs } => {
                    if probs.len() != num_classes {
                        return Err(ModelError::InvalidInput(format!(
                            "leaf {i} has {} probabilities for {num_classes} classes",
                            probs.len()
                        )));
                    }
                    Ok(Node::Leaf { probs })
                }
                FlatNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if left >= n || right >= n {
                        return Err(ModelError::InvalidInput(format!(
                            "split {i} links to child out of bounds ({left}/{right} of {n})"
                        )));
                    }
                    Ok(Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    })
                }
            })
            .collect::<Result<_>>()?;
        Ok(DecisionTree {
            nodes: built,
            num_classes,
        })
    }

    /// Maximum depth reached (root = 0); 0 for a single leaf.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Class-probability estimate for one sample.
    pub fn predict_proba_row(&self, row: &[f64]) -> &[f64] {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { probs } => return probs,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Class probabilities for a batch.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.num_classes);
        for r in 0..x.rows() {
            out.row_mut(r)
                .copy_from_slice(self.predict_proba_row(x.row(r)));
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        x: &Matrix,
        y: &[usize],
        weights: &[f64],
        indices: &[usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut SeededRng,
    ) -> usize {
        let (class_w, total_w) = class_weights(y, weights, indices, self.num_classes);
        let node_gini = gini(&class_w, total_w);
        let make_leaf = |nodes: &mut Vec<Node>| {
            let probs: Vec<f64> = if total_w > 0.0 {
                class_w.iter().map(|&w| w / total_w).collect()
            } else {
                vec![1.0 / self.num_classes as f64; self.num_classes]
            };
            nodes.push(Node::Leaf { probs });
            nodes.len() - 1
        };
        if depth >= config.max_depth
            || indices.len() < 2 * config.min_samples_leaf
            || node_gini <= 1e-12
        {
            return make_leaf(&mut self.nodes);
        }

        // Candidate features.
        let d = x.cols();
        let features: Vec<usize> = match config.mtry {
            Some(m) if m < d => rng.sample_indices(d, m),
            _ => (0..d).collect(),
        };

        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sortable: Vec<(f64, usize)> = Vec::with_capacity(indices.len());
        for &f in &features {
            sortable.clear();
            sortable.extend(indices.iter().map(|&i| (x.get(i, f), i)));
            sortable.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut left_w = vec![0.0; self.num_classes];
            let mut left_total = 0.0;
            let mut left_count = 0usize;
            for k in 0..sortable.len() - 1 {
                let (v, i) = sortable[k];
                left_w[y[i]] += weights[i];
                left_total += weights[i];
                left_count += 1;
                let next_v = sortable[k + 1].0;
                if next_v <= v {
                    continue; // no valid threshold between equal values
                }
                if left_count < config.min_samples_leaf
                    || indices.len() - left_count < config.min_samples_leaf
                {
                    continue;
                }
                let right_total = total_w - left_total;
                if left_total <= 0.0 || right_total <= 0.0 {
                    continue;
                }
                let mut right_w = class_w.clone();
                for (rw, lw) in right_w.iter_mut().zip(&left_w) {
                    *rw -= lw;
                }
                let gain = node_gini
                    - (left_total / total_w) * gini(&left_w, left_total)
                    - (right_total / total_w) * gini(&right_w, right_total);
                if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, f, 0.5 * (v + next_v)));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            return make_leaf(&mut self.nodes);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| x.get(i, feature) <= threshold);
        // Reserve a slot for this split node before growing children.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { probs: Vec::new() }); // placeholder
        let left = self.grow(x, y, weights, &left_idx, depth + 1, config, rng);
        let right = self.grow(x, y, weights, &right_idx, depth + 1, config, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }
}

fn class_weights(
    y: &[usize],
    weights: &[f64],
    indices: &[usize],
    num_classes: usize,
) -> (Vec<f64>, f64) {
    let mut class_w = vec![0.0; num_classes];
    let mut total = 0.0;
    for &i in indices {
        class_w[y[i]] += weights[i];
        total += weights[i];
    }
    (class_w, total)
}

fn gini(class_w: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - class_w
        .iter()
        .map(|&w| (w / total) * (w / total))
        .sum::<f64>()
}

/// A regression tree fit to gradient/hessian pairs with the XGBoost
/// second-order split criterion. Used by [`crate::gbdt`].
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<RegNode>,
}

#[derive(Debug, Clone)]
enum RegNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Hyper-parameters for the boosting regression trees.
#[derive(Debug, Clone)]
pub struct RegTreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// L2 regularization on leaf values (XGBoost lambda).
    pub lambda: f64,
    /// Minimum hessian sum per child (XGBoost `min_child_weight`).
    pub min_child_weight: f64,
    /// Minimum gain to split (XGBoost gamma).
    pub gamma: f64,
    /// Features examined per split; `None` uses all.
    pub mtry: Option<usize>,
}

impl Default for RegTreeConfig {
    fn default() -> Self {
        RegTreeConfig {
            max_depth: 5,
            lambda: 1.0,
            min_child_weight: 1.0,
            gamma: 0.0,
            mtry: None,
        }
    }
}

impl RegressionTree {
    /// Fits a regression tree to per-sample gradients `g` and hessians `h`
    /// over the rows of `x` at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `g`, `h`, and `x` row counts disagree.
    pub fn fit(
        x: &Matrix,
        g: &[f64],
        h: &[f64],
        indices: &[usize],
        config: &RegTreeConfig,
        rng: &mut SeededRng,
    ) -> Self {
        assert_eq!(x.rows(), g.len(), "RegressionTree: gradient count mismatch");
        assert_eq!(g.len(), h.len(), "RegressionTree: hessian count mismatch");
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow(x, g, h, indices, 0, config, rng);
        tree
    }

    /// Predicted value for one sample.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Exports the tree as flat serializable nodes (root at index 0).
    pub fn export_nodes(&self) -> Vec<FlatRegNode> {
        self.nodes
            .iter()
            .map(|n| match n {
                RegNode::Leaf { value } => FlatRegNode::Leaf { value: *value },
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => FlatRegNode::Split {
                    feature: *feature,
                    threshold: *threshold,
                    left: *left,
                    right: *right,
                },
            })
            .collect()
    }

    /// Rebuilds a tree from flat nodes produced by
    /// [`RegressionTree::export_nodes`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInput`] when the node list is empty or
    /// a child index is out of bounds.
    pub fn from_nodes(nodes: Vec<FlatRegNode>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(ModelError::InvalidInput(
                "regression tree has no nodes".into(),
            ));
        }
        let n = nodes.len();
        let built: Vec<RegNode> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, node)| match node {
                FlatRegNode::Leaf { value } => Ok(RegNode::Leaf { value }),
                FlatRegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if left >= n || right >= n {
                        return Err(ModelError::InvalidInput(format!(
                            "split {i} links to child out of bounds ({left}/{right} of {n})"
                        )));
                    }
                    Ok(RegNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    })
                }
            })
            .collect::<Result<_>>()?;
        Ok(RegressionTree { nodes: built })
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        x: &Matrix,
        g: &[f64],
        h: &[f64],
        indices: &[usize],
        depth: usize,
        config: &RegTreeConfig,
        rng: &mut SeededRng,
    ) -> usize {
        let g_sum: f64 = indices.iter().map(|&i| g[i]).sum();
        let h_sum: f64 = indices.iter().map(|&i| h[i]).sum();
        let leaf_value = -g_sum / (h_sum + config.lambda);
        let make_leaf = |nodes: &mut Vec<RegNode>| {
            nodes.push(RegNode::Leaf { value: leaf_value });
            nodes.len() - 1
        };
        if depth >= config.max_depth || indices.len() < 2 {
            return make_leaf(&mut self.nodes);
        }
        let parent_score = g_sum * g_sum / (h_sum + config.lambda);
        let d = x.cols();
        let features: Vec<usize> = match config.mtry {
            Some(m) if m < d => rng.sample_indices(d, m),
            _ => (0..d).collect(),
        };
        let mut best: Option<(f64, usize, f64)> = None;
        let mut sortable: Vec<(f64, usize)> = Vec::with_capacity(indices.len());
        for &f in &features {
            sortable.clear();
            sortable.extend(indices.iter().map(|&i| (x.get(i, f), i)));
            sortable.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for k in 0..sortable.len() - 1 {
                let (v, i) = sortable[k];
                gl += g[i];
                hl += h[i];
                let next_v = sortable[k + 1].0;
                if next_v <= v {
                    continue;
                }
                let hr = h_sum - hl;
                if hl < config.min_child_weight || hr < config.min_child_weight {
                    continue;
                }
                let gr = g_sum - gl;
                let gain = 0.5
                    * (gl * gl / (hl + config.lambda) + gr * gr / (hr + config.lambda)
                        - parent_score)
                    - config.gamma;
                if gain > 1e-12 && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, 0.5 * (v + next_v)));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            return make_leaf(&mut self.nodes);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| x.get(i, feature) <= threshold);
        let slot = self.nodes.len();
        self.nodes.push(RegNode::Leaf { value: 0.0 });
        let left = self.grow(x, g, h, &left_idx, depth + 1, config, rng);
        let right = self.grow(x, g, h, &right_idx, depth + 1, config, rng);
        self.nodes[slot] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = f64::from(i % 2);
            let b = f64::from((i / 2) % 2);
            rows.push([a + 0.01 * i as f64 / 40.0, b]);
            y.push(usize::from((a + b) as usize % 2 == 1));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn fits_xor_exactly() {
        let (x, y) = xor_data();
        let w = vec![1.0; y.len()];
        let mut rng = SeededRng::new(1);
        let cfg = TreeConfig {
            min_samples_leaf: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &w, 2, &cfg, &mut rng).unwrap();
        for (r, &label) in y.iter().enumerate() {
            let probs = tree.predict_proba_row(x.row(r));
            let pred = usize::from(probs[1] > probs[0]);
            assert_eq!(pred, label, "row {r}");
        }
        assert!(tree.depth() >= 2, "XOR needs at least two levels");
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = vec![1, 1, 1];
        let w = vec![1.0; 3];
        let mut rng = SeededRng::new(2);
        let tree = DecisionTree::fit(&x, &y, &w, 2, &TreeConfig::default(), &mut rng).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_proba_row(&[5.0]), &[0.0, 1.0]);
    }

    #[test]
    fn max_depth_limits_tree() {
        let (x, y) = xor_data();
        let w = vec![1.0; y.len()];
        let mut rng = SeededRng::new(3);
        let cfg = TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &w, 2, &cfg, &mut rng).unwrap();
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn weights_shift_leaf_probabilities() {
        // Same point, conflicting labels; the heavier label wins.
        let x = Matrix::from_rows(&[&[0.0], &[0.0], &[0.0]]);
        let y = vec![0, 1, 1];
        let w = vec![10.0, 1.0, 1.0];
        let mut rng = SeededRng::new(4);
        let tree = DecisionTree::fit(&x, &y, &w, 2, &TreeConfig::default(), &mut rng).unwrap();
        let probs = tree.predict_proba_row(&[0.0]);
        assert!(
            probs[0] > 0.8,
            "weighted majority should dominate: {probs:?}"
        );
    }

    #[test]
    fn proba_batch_rows_sum_to_one() {
        let (x, y) = xor_data();
        let w = vec![1.0; y.len()];
        let mut rng = SeededRng::new(5);
        let tree = DecisionTree::fit(&x, &y, &w, 2, &TreeConfig::default(), &mut rng).unwrap();
        let p = tree.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn regression_tree_fits_step_function() {
        // Minimizing 0.5*h*(v + g/h)^2: with h = 1, leaf value = -g.
        // Step target: y = 2 for x < 0, y = -1 for x >= 0. Feed g = -y, h = 1.
        let n = 50;
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 / n as f64 - 0.5);
        let g: Vec<f64> = (0..n)
            .map(|i| {
                if (i as f64 / n as f64) < 0.5 {
                    -2.0
                } else {
                    1.0
                }
            })
            .collect();
        let h = vec![1.0; n];
        let idx: Vec<usize> = (0..n).collect();
        let mut rng = SeededRng::new(6);
        let cfg = RegTreeConfig {
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &idx, &cfg, &mut rng);
        assert!((tree.predict_row(&[-0.4]) - 2.0).abs() < 1e-9);
        assert!((tree.predict_row(&[0.4]) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_tree_lambda_shrinks_leaves() {
        let x = Matrix::from_fn(10, 1, |i, _| i as f64);
        let g = vec![-1.0; 10];
        let h = vec![1.0; 10];
        let idx: Vec<usize> = (0..10).collect();
        let mut rng = SeededRng::new(7);
        let no_reg = RegressionTree::fit(
            &x,
            &g,
            &h,
            &idx,
            &RegTreeConfig {
                lambda: 0.0,
                ..RegTreeConfig::default()
            },
            &mut rng,
        );
        let reg = RegressionTree::fit(
            &x,
            &g,
            &h,
            &idx,
            &RegTreeConfig {
                lambda: 10.0,
                ..RegTreeConfig::default()
            },
            &mut rng,
        );
        assert!(reg.predict_row(&[0.0]).abs() < no_reg.predict_row(&[0.0]).abs());
    }

    #[test]
    fn mtry_restricts_split_features() {
        // With mtry = 1 over 2 features the tree still fits (just may need
        // more depth); sanity check that it runs and predicts.
        let (x, y) = xor_data();
        let w = vec![1.0; y.len()];
        let mut rng = SeededRng::new(8);
        let cfg = TreeConfig {
            mtry: Some(1),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &w, 2, &cfg, &mut rng).unwrap();
        assert!(tree.num_nodes() >= 1);
    }

    #[test]
    fn flat_nodes_round_trip_decision_tree() {
        let (x, y) = xor_data();
        let w = vec![1.0; y.len()];
        let mut rng = SeededRng::new(9);
        let tree = DecisionTree::fit(&x, &y, &w, 2, &TreeConfig::default(), &mut rng).unwrap();
        let nodes = tree.export_nodes();
        let rebuilt = DecisionTree::from_nodes(nodes.clone(), 2).unwrap();
        assert_eq!(rebuilt.export_nodes(), nodes);
        assert_eq!(rebuilt.predict_proba(&x), tree.predict_proba(&x));
    }

    #[test]
    fn flat_nodes_round_trip_regression_tree() {
        let n = 30;
        let x = Matrix::from_fn(n, 2, |i, j| (i * (j + 1)) as f64 / n as f64);
        let g: Vec<f64> = (0..n).map(|i| if i < n / 2 { -1.5 } else { 0.5 }).collect();
        let h = vec![1.0; n];
        let idx: Vec<usize> = (0..n).collect();
        let mut rng = SeededRng::new(10);
        let tree = RegressionTree::fit(&x, &g, &h, &idx, &RegTreeConfig::default(), &mut rng);
        let nodes = tree.export_nodes();
        let rebuilt = RegressionTree::from_nodes(nodes.clone()).unwrap();
        assert_eq!(rebuilt.export_nodes(), nodes);
        for r in 0..n {
            assert_eq!(rebuilt.predict_row(x.row(r)), tree.predict_row(x.row(r)));
        }
    }

    #[test]
    fn from_nodes_rejects_malformed_trees() {
        // Empty arenas.
        assert!(DecisionTree::from_nodes(Vec::new(), 2).is_err());
        assert!(RegressionTree::from_nodes(Vec::new()).is_err());
        // Leaf probability length disagrees with num_classes.
        let bad_probs = vec![FlatNode::Leaf {
            probs: vec![1.0, 0.0, 0.0],
        }];
        assert!(DecisionTree::from_nodes(bad_probs, 2).is_err());
        // Child index out of bounds.
        let bad_child = vec![
            FlatNode::Split {
                feature: 0,
                threshold: 0.5,
                left: 1,
                right: 7,
            },
            FlatNode::Leaf {
                probs: vec![1.0, 0.0],
            },
        ];
        assert!(DecisionTree::from_nodes(bad_child, 2).is_err());
        let bad_reg_child = vec![
            FlatRegNode::Split {
                feature: 0,
                threshold: 0.5,
                left: 9,
                right: 1,
            },
            FlatRegNode::Leaf { value: 1.0 },
        ];
        assert!(RegressionTree::from_nodes(bad_reg_child).is_err());
    }
}
