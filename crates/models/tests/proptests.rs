//! Property-based tests for classifiers and metrics.

use fsda_linalg::{Matrix, SeededRng};
use fsda_models::classifier::argmax_rows;
use fsda_models::forest::{ForestConfig, RandomForest};
use fsda_models::gbdt::{GbdtConfig, GradientBoosting};
use fsda_models::metrics::{accuracy, class_scores, confusion_matrix, macro_f1, weighted_f1};
use fsda_models::tree::{DecisionTree, TreeConfig};
use fsda_models::Classifier;
use proptest::prelude::*;

fn random_labels(seed: u64, n: usize, k: usize) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SeededRng::new(seed);
    let t: Vec<usize> = (0..n).map(|_| rng.index(k)).collect();
    let p: Vec<usize> = (0..n).map(|_| rng.index(k)).collect();
    (t, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f1_bounded_and_perfect_on_self(seed in 0u64..1000, n in 1usize..60, k in 2usize..6) {
        let (t, p) = random_labels(seed, n, k);
        let f1 = macro_f1(&t, &p, k);
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert_eq!(macro_f1(&t, &t, k), 1.0);
        prop_assert!((0.0..=1.0).contains(&weighted_f1(&t, &p, k)));
        prop_assert!((0.0..=1.0).contains(&accuracy(&t, &p)));
    }

    #[test]
    fn confusion_matrix_row_sums_equal_support(seed in 0u64..1000, n in 1usize..40, k in 2usize..5) {
        let (t, p) = random_labels(seed, n, k);
        let cm = confusion_matrix(&t, &p, k);
        let scores = class_scores(&t, &p, k);
        for c in 0..k {
            let row_sum: f64 = (0..k).map(|j| cm.get(c, j)).sum();
            prop_assert_eq!(row_sum as usize, scores.support[c]);
        }
        let total: f64 = cm.as_slice().iter().sum();
        prop_assert_eq!(total as usize, n);
    }

    #[test]
    fn precision_recall_bounded(seed in 0u64..1000, n in 1usize..40, k in 2usize..5) {
        let (t, p) = random_labels(seed, n, k);
        let s = class_scores(&t, &p, k);
        for c in 0..k {
            prop_assert!((0.0..=1.0).contains(&s.precision[c]));
            prop_assert!((0.0..=1.0).contains(&s.recall[c]));
            prop_assert!((0.0..=1.0).contains(&s.f1[c]));
        }
    }

    #[test]
    fn tree_fits_training_data_perfectly_when_separable(seed in 0u64..200) {
        // Distinct feature values per sample => a deep tree memorizes.
        let mut rng = SeededRng::new(seed);
        let n = 20;
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 + rng.uniform() * 0.3);
        let y: Vec<usize> = (0..n).map(|_| rng.index(3)).collect();
        let w = vec![1.0; n];
        let cfg = TreeConfig { max_depth: 32, min_samples_leaf: 1, mtry: None };
        let tree = DecisionTree::fit(&x, &y, &w, 3, &cfg, &mut rng).unwrap();
        for (r, &label) in y.iter().enumerate() {
            let probs = tree.predict_proba_row(x.row(r));
            let pred = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            prop_assert_eq!(pred, label);
        }
    }

    #[test]
    fn forest_probabilities_are_distributions(seed in 0u64..100) {
        let mut rng = SeededRng::new(seed);
        let x = rng.normal_matrix(30, 3, 0.0, 1.0);
        let y: Vec<usize> = (0..30).map(|_| rng.index(2)).collect();
        let mut f = RandomForest::new(
            ForestConfig { num_trees: 5, threads: 1, ..ForestConfig::default() },
            seed,
        );
        f.fit(&x, &y, 2).unwrap();
        let p = f.predict_proba(&x);
        for r in 0..30 {
            let s: f64 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
        prop_assert_eq!(f.predict(&x), argmax_rows(&p));
    }

    #[test]
    fn gbdt_probabilities_are_distributions(seed in 0u64..50) {
        let mut rng = SeededRng::new(seed);
        let x = rng.normal_matrix(24, 3, 0.0, 1.0);
        let y: Vec<usize> = (0..24).map(|_| rng.index(3)).collect();
        let mut m = GradientBoosting::new(
            GbdtConfig { rounds: 3, ..GbdtConfig::default() },
            seed,
        );
        m.fit(&x, &y, 3).unwrap();
        let p = m.predict_proba(&x);
        prop_assert!(p.is_finite());
        for r in 0..24 {
            let s: f64 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn argmax_rows_selects_max(seed in 0u64..1000, n in 1usize..10, k in 1usize..6) {
        let mut rng = SeededRng::new(seed);
        let m = rng.normal_matrix(n, k, 0.0, 1.0);
        let picks = argmax_rows(&m);
        for (r, &c) in picks.iter().enumerate() {
            for j in 0..k {
                prop_assert!(m.get(r, c) >= m.get(r, j));
            }
        }
    }
}
