//! The [`Layer`] trait and stateless / parametric layers.

use crate::plan::PlanOp;
use crate::Param;
use fsda_linalg::kernel::{self, Act};
use fsda_linalg::{Matrix, SeededRng};

/// A differentiable network layer.
///
/// `forward` caches whatever it needs so that a following `backward` can
/// compute the gradient with respect to the layer input and accumulate
/// parameter gradients. Layers are used through [`crate::Sequential`] in
/// practice.
pub trait Layer: Send + Sync {
    /// Computes the layer output for a batch (rows are samples).
    /// `train` toggles training-time behaviour (dropout, batch statistics).
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix;

    /// Propagates `grad_output` (dL/d output) back through the layer,
    /// accumulating parameter gradients, and returns dL/d input.
    ///
    /// Must be called after a `forward` on the same batch.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Inference-only forward pass: evaluation-mode behaviour, no caching,
    /// usable through a shared reference (classifiers predict with `&self`).
    fn infer(&self, input: &Matrix) -> Matrix;

    /// Mutable views of the layer's parameters and gradients (empty for
    /// stateless layers). The order must be stable across calls.
    fn params_mut(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    /// Shared views of the layer's parameter tensors, in the same stable
    /// order as [`Layer::params_mut`]. Used by weight export
    /// ([`crate::state::export_state`]), which must work through `&self`.
    fn params(&self) -> Vec<&Matrix> {
        Vec::new()
    }

    /// Shared views of the layer's non-parameter state ("buffers") that
    /// inference depends on — e.g. batch-norm running statistics. Buffers
    /// are not touched by optimizers but must survive serialization, or a
    /// reloaded network would infer with freshly-initialized statistics.
    fn buffers(&self) -> Vec<&[f64]> {
        Vec::new()
    }

    /// Mutable views of the layer's buffers, in the same order as
    /// [`Layer::buffers`]. Used by weight import
    /// ([`crate::state::load_state`]).
    fn buffers_mut(&mut self) -> Vec<&mut Vec<f64>> {
        Vec::new()
    }

    /// Zeroes accumulated parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.grad.map_inplace(|_| 0.0);
        }
    }

    /// Number of scalar parameters (for reporting).
    fn num_params(&self) -> usize {
        0
    }

    /// Lowers this layer to a [`PlanOp`] for inference-plan compilation
    /// ([`crate::plan::InferPlan`]).
    ///
    /// The default is [`PlanOp::Unsupported`], which makes compilation
    /// fail so callers fall back to the layer-by-layer [`Layer::infer`]
    /// path — an opaque custom layer degrades gracefully instead of being
    /// silently skipped.
    fn plan_op(&self) -> PlanOp {
        PlanOp::Unsupported("opaque layer")
    }
}

/// Fully-connected affine layer `y = x W^T + b`.
///
/// Weights are stored as an `(out, in)` matrix and initialized with
/// He-uniform scaling, which works well for the ReLU-family activations the
/// paper's architectures use.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Matrix,
    bias: Matrix,
    grad_weight: Matrix,
    grad_bias: Matrix,
    input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with He-uniform initialization.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        let bound = (6.0 / in_dim as f64).sqrt();
        let weight = Matrix::from_fn(out_dim, in_dim, |_, _| rng.uniform_range(-bound, bound));
        Dense {
            weight,
            bias: Matrix::zeros(1, out_dim),
            grad_weight: Matrix::zeros(out_dim, in_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            input: None,
        }
    }

    /// Creates a dense layer with Xavier-uniform initialization (preferred
    /// for tanh/sigmoid outputs).
    pub fn new_xavier(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let weight = Matrix::from_fn(out_dim, in_dim, |_, _| rng.uniform_range(-bound, bound));
        Dense {
            weight,
            bias: Matrix::zeros(1, out_dim),
            grad_weight: Matrix::zeros(out_dim, in_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Borrow of the weight matrix (for tests and inspection).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        let out = self.infer(input);
        self.input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        debug_assert_eq!(input.cols(), self.in_dim(), "Dense: input dim mismatch");
        // B-transposed kernel: no per-call `weight.transpose()` allocation.
        let mut out = kernel::matmul_nt(input, &self.weight);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (o, &b) in row.iter_mut().zip(self.bias.row(0)) {
                *o += b;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .input
            .as_ref()
            .expect("Dense::backward called before forward");
        // dW += g^T x ; db += sum_rows g ; dx = g W
        self.grad_weight
            .axpy(1.0, &kernel::matmul_at(grad_output, input));
        for r in 0..grad_output.rows() {
            let g = grad_output.row(r);
            let gb = self.grad_bias.row_mut(0);
            for (b, &v) in gb.iter_mut().zip(g) {
                *b += v;
            }
        }
        grad_output.matmul(&self.weight)
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                value: &mut self.weight,
                grad: &mut self.grad_weight,
            },
            Param {
                value: &mut self.bias,
                grad: &mut self.grad_bias,
            },
        ]
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.weight, &self.bias]
    }

    fn num_params(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.cols()
    }

    fn plan_op(&self) -> PlanOp {
        PlanOp::Dense {
            weight: self.weight.clone(),
            bias: self.bias.row(0).to_vec(),
        }
    }
}

/// Supported elementwise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// `x` for `x > 0`, `alpha * x` otherwise, with `alpha = 0.2` (the CTGAN
    /// discriminator default).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl From<ActivationKind> for Act {
    fn from(kind: ActivationKind) -> Act {
        match kind {
            ActivationKind::Relu => Act::Relu,
            ActivationKind::LeakyRelu => Act::LeakyRelu,
            ActivationKind::Tanh => Act::Tanh,
            ActivationKind::Sigmoid => Act::Sigmoid,
        }
    }
}

/// Stateless elementwise activation layer.
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    input: Option<Matrix>,
}

impl Activation {
    /// Creates an activation of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation { kind, input: None }
    }

    /// ReLU activation.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// LeakyReLU activation with slope 0.2.
    pub fn leaky_relu() -> Self {
        Self::new(ActivationKind::LeakyRelu)
    }

    /// Tanh activation.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// Sigmoid activation.
    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }

    fn apply(&self, x: f64) -> f64 {
        // Single source of truth: the kernel crate's `Act` formulas are the
        // same ones this layer historically used, bit for bit.
        Act::from(self.kind).eval_f64(x)
    }

    fn derivative(&self, x: f64) -> f64 {
        match self.kind {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.2
                }
            }
            ActivationKind::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            ActivationKind::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        self.input = Some(input.clone());
        input.map(|x| self.apply(x))
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.map(|x| self.apply(x))
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .input
            .as_ref()
            .expect("Activation::backward called before forward");
        let mut out = grad_output.clone();
        for (g, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *g *= self.derivative(x);
        }
        out
    }

    fn plan_op(&self) -> PlanOp {
        PlanOp::Activation(Act::from(self.kind))
    }
}

/// Numerically-stable logistic sigmoid (the kernel crate's two-branch
/// formula; kept as a free function for callers outside layer code).
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    Act::Sigmoid.eval_f64(x)
}

/// Gradient-reversal layer used by DANN: identity on the forward pass,
/// multiplies the gradient by `-lambda` on the backward pass.
#[derive(Debug, Clone)]
pub struct GradientReversal {
    lambda: f64,
}

impl GradientReversal {
    /// Creates a reversal layer with the given strength `lambda`.
    pub fn new(lambda: f64) -> Self {
        GradientReversal { lambda }
    }

    /// Updates the reversal strength (DANN schedules it during training).
    pub fn set_lambda(&mut self, lambda: f64) {
        self.lambda = lambda;
    }

    /// Current reversal strength.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Layer for GradientReversal {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        input.clone()
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.clone()
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        grad_output.scale(-self.lambda)
    }

    fn plan_op(&self) -> PlanOp {
        // Identity at inference time; only the backward pass differs.
        PlanOp::Identity
    }
}

/// Column spans of a CTGAN-style mixed output: a contiguous block of
/// continuous columns squashed with `tanh`, followed by zero or more one-hot
/// blocks produced with Gumbel-softmax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSpec {
    /// Number of leading continuous columns (tanh).
    pub continuous: usize,
    /// Sizes of the discrete one-hot blocks that follow.
    pub discrete_blocks: Vec<usize>,
}

impl OutputSpec {
    /// A purely continuous output of `n` columns.
    pub fn continuous(n: usize) -> Self {
        OutputSpec {
            continuous: n,
            discrete_blocks: Vec::new(),
        }
    }

    /// Total number of output columns.
    pub fn width(&self) -> usize {
        self.continuous + self.discrete_blocks.iter().sum::<usize>()
    }
}

/// CTGAN-style mixed output head: `tanh` over the continuous block and
/// Gumbel-softmax over each discrete block.
///
/// The Gumbel-softmax uses the straight-through-free "soft" sample during
/// training, which keeps the layer differentiable; the gradient treats the
/// Gumbel noise as constant (the standard reparameterization).
#[derive(Debug, Clone)]
pub struct MixedActivation {
    spec: OutputSpec,
    temperature: f64,
    rng: SeededRng,
    /// Cached (input logits + gumbel noise already added, softmax outputs).
    cache: Option<(Matrix, Matrix)>,
}

impl MixedActivation {
    /// Creates a mixed output head with Gumbel-softmax temperature `tau`.
    ///
    /// # Panics
    ///
    /// Panics if `tau <= 0`.
    pub fn new(spec: OutputSpec, tau: f64, rng: SeededRng) -> Self {
        assert!(tau > 0.0, "MixedActivation: temperature must be positive");
        MixedActivation {
            spec,
            temperature: tau,
            rng,
            cache: None,
        }
    }

    /// The output spec.
    pub fn spec(&self) -> &OutputSpec {
        &self.spec
    }
}

impl Layer for MixedActivation {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        debug_assert_eq!(
            input.cols(),
            self.spec.width(),
            "MixedActivation: width mismatch"
        );
        let rows = input.rows();
        let mut noisy = input.clone();
        let mut out = Matrix::zeros(rows, input.cols());
        for r in 0..rows {
            for c in 0..self.spec.continuous {
                out.set(r, c, input.get(r, c).tanh());
            }
        }
        let mut offset = self.spec.continuous;
        for &block in &self.spec.discrete_blocks.clone() {
            for r in 0..rows {
                // Add Gumbel noise during training; plain softmax at eval.
                let mut logits: Vec<f64> = (0..block)
                    .map(|k| {
                        let l = input.get(r, offset + k) / self.temperature;
                        if train {
                            l + self.rng.gumbel() / self.temperature
                        } else {
                            l
                        }
                    })
                    .collect();
                let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for l in &mut logits {
                    *l = (*l - max).exp();
                    sum += *l;
                }
                for (k, l) in logits.iter().enumerate() {
                    let p = l / sum;
                    out.set(r, offset + k, p);
                    noisy.set(r, offset + k, p); // cache softmax output for backward
                }
            }
            offset += block;
        }
        self.cache = Some((input.clone(), noisy));
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        debug_assert_eq!(
            input.cols(),
            self.spec.width(),
            "MixedActivation: width mismatch"
        );
        let rows = input.rows();
        let mut out = Matrix::zeros(rows, input.cols());
        for r in 0..rows {
            for c in 0..self.spec.continuous {
                out.set(r, c, input.get(r, c).tanh());
            }
        }
        let mut offset = self.spec.continuous;
        for &block in &self.spec.discrete_blocks {
            for r in 0..rows {
                let mut logits: Vec<f64> = (0..block)
                    .map(|k| input.get(r, offset + k) / self.temperature)
                    .collect();
                let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for l in &mut logits {
                    *l = (*l - max).exp();
                    sum += *l;
                }
                for (k, l) in logits.iter().enumerate() {
                    out.set(r, offset + k, l / sum);
                }
            }
            offset += block;
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let (input, soft) = self
            .cache
            .as_ref()
            .expect("MixedActivation::backward called before forward");
        let mut grad = grad_output.clone();
        let rows = grad.rows();
        for r in 0..rows {
            for c in 0..self.spec.continuous {
                let t = input.get(r, c).tanh();
                let v = grad.get(r, c) * (1.0 - t * t);
                grad.set(r, c, v);
            }
        }
        let mut offset = self.spec.continuous;
        for &block in &self.spec.discrete_blocks {
            for r in 0..rows {
                // Softmax Jacobian: dL/dz_k = (g_k - sum_j g_j p_j) * p_k / tau
                let ps: Vec<f64> = (0..block).map(|k| soft.get(r, offset + k)).collect();
                let gs: Vec<f64> = (0..block).map(|k| grad_output.get(r, offset + k)).collect();
                let dot: f64 = ps.iter().zip(&gs).map(|(&p, &g)| p * g).sum();
                for k in 0..block {
                    grad.set(r, offset + k, (gs[k] - dot) * ps[k] / self.temperature);
                }
            }
            offset += block;
        }
        grad
    }

    fn plan_op(&self) -> PlanOp {
        if self.spec.discrete_blocks.is_empty() {
            // A purely continuous head is elementwise tanh over the full
            // width — exactly what `infer` computes.
            PlanOp::Activation(Act::Tanh)
        } else {
            // Gumbel-softmax blocks need per-block softmax; no lowering.
            PlanOp::Unsupported("mixed discrete output head")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(layer: &mut impl Layer, input: &Matrix, tol: f64) {
        // Analytic input-gradient vs central finite differences of sum(output).
        let out = layer.forward(input, false);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let analytic = layer.backward(&ones);
        let eps = 1e-5;
        for i in 0..input.rows() {
            for j in 0..input.cols() {
                let mut plus = input.clone();
                plus.set(i, j, input.get(i, j) + eps);
                let mut minus = input.clone();
                minus.set(i, j, input.get(i, j) - eps);
                let f_plus: f64 = layer.forward(&plus, false).as_slice().iter().sum();
                let f_minus: f64 = layer.forward(&minus, false).as_slice().iter().sum();
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                assert!(
                    (analytic.get(i, j) - numeric).abs() < tol,
                    "grad mismatch at ({i},{j}): analytic {} vs numeric {}",
                    analytic.get(i, j),
                    numeric
                );
            }
        }
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut rng = SeededRng::new(1);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let y = d.forward(&x, true);
        assert_eq!(y.shape(), (2, 2));
        // Zero input row => output equals bias (zero-initialized).
        assert_eq!(y.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn dense_input_gradient_matches_finite_diff() {
        let mut rng = SeededRng::new(2);
        let mut d = Dense::new(4, 3, &mut rng);
        let x = Matrix::from_fn(2, 4, |i, j| (i as f64 - j as f64) * 0.3);
        finite_diff_check(&mut d, &x, 1e-6);
    }

    #[test]
    fn dense_weight_gradient_matches_finite_diff() {
        let mut rng = SeededRng::new(3);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 2.0]]);
        let out = d.forward(&x, true);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        d.zero_grad();
        d.backward(&ones);
        let analytic = d.grad_weight.clone();
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let orig = d.weight.get(i, j);
                d.weight.set(i, j, orig + eps);
                let fp: f64 = d.forward(&x, true).as_slice().iter().sum();
                d.weight.set(i, j, orig - eps);
                let fm: f64 = d.forward(&x, true).as_slice().iter().sum();
                d.weight.set(i, j, orig);
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (analytic.get(i, j) - numeric).abs() < 1e-5,
                    "weight grad mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn activations_match_finite_diff() {
        let x = Matrix::from_fn(3, 3, |i, j| (i as f64 * 3.0 + j as f64) * 0.37 - 1.3);
        for kind in [
            ActivationKind::Relu,
            ActivationKind::LeakyRelu,
            ActivationKind::Tanh,
            ActivationKind::Sigmoid,
        ] {
            let mut a = Activation::new(kind);
            finite_diff_check(&mut a, &x, 1e-5);
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut a = Activation::relu();
        let y = a.forward(&Matrix::from_rows(&[&[-1.0, 2.0]]), true);
        assert_eq!(y.row(0), &[0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_slope() {
        let mut a = Activation::leaky_relu();
        let y = a.forward(&Matrix::from_rows(&[&[-1.0, 2.0]]), true);
        assert_eq!(y.row(0), &[-0.2, 2.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gradient_reversal_flips_and_scales() {
        let mut g = GradientReversal::new(0.5);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(g.forward(&x, true), x);
        let back = g.backward(&Matrix::from_rows(&[&[2.0, -4.0]]));
        assert_eq!(back.row(0), &[-1.0, 2.0]);
        g.set_lambda(1.0);
        assert_eq!(g.lambda(), 1.0);
    }

    #[test]
    fn mixed_activation_continuous_only_is_tanh() {
        let rng = SeededRng::new(4);
        let mut m = MixedActivation::new(OutputSpec::continuous(2), 0.5, rng);
        let x = Matrix::from_rows(&[&[0.5, -0.5]]);
        let y = m.forward(&x, true);
        assert!((y.get(0, 0) - 0.5_f64.tanh()).abs() < 1e-12);
        assert!((y.get(0, 1) + 0.5_f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn mixed_activation_discrete_block_sums_to_one() {
        let rng = SeededRng::new(5);
        let spec = OutputSpec {
            continuous: 1,
            discrete_blocks: vec![3],
        };
        let mut m = MixedActivation::new(spec, 0.7, rng);
        let x = Matrix::from_rows(&[&[0.3, 1.0, -2.0, 0.5]]);
        for train in [true, false] {
            let y = m.forward(&x, train);
            let s: f64 = (1..4).map(|c| y.get(0, c)).sum();
            assert!(
                (s - 1.0).abs() < 1e-9,
                "softmax block must sum to 1 (train={train})"
            );
            assert!((0..4).all(|c| y.get(0, c).is_finite()));
        }
    }

    #[test]
    fn mixed_activation_eval_grad_matches_finite_diff() {
        // In eval mode there is no Gumbel noise, so the finite-difference
        // check is exact.
        let rng = SeededRng::new(6);
        let spec = OutputSpec {
            continuous: 2,
            discrete_blocks: vec![2],
        };
        let mut m = MixedActivation::new(spec, 1.0, rng);
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9, -0.1]]);
        finite_diff_check(&mut m, &x, 1e-5);
    }

    #[test]
    fn output_spec_width() {
        let spec = OutputSpec {
            continuous: 3,
            discrete_blocks: vec![2, 4],
        };
        assert_eq!(spec.width(), 9);
        assert_eq!(OutputSpec::continuous(5).width(), 5);
    }

    #[test]
    fn num_params_counts_weights_and_bias() {
        let mut rng = SeededRng::new(7);
        let d = Dense::new(10, 4, &mut rng);
        assert_eq!(d.num_params(), 44);
    }
}
