//! A from-scratch dense neural-network substrate with explicit
//! forward/backward passes.
//!
//! The paper's models are all small fully-connected networks over tabular
//! data (generator/discriminator with two hidden layers of 128–256 units,
//! MLP/TNet classifiers, DANN, embedding networks). No mature Rust crate
//! covers adversarial training of such nets, so this crate implements the
//! substrate directly: every [`Layer`] computes its output and, given the
//! gradient of the loss with respect to that output, the gradient with
//! respect to its input (and accumulates parameter gradients).
//!
//! # Modules
//!
//! * [`layer`] — the [`Layer`] trait, [`Dense`](layer::Dense), activations,
//!   gradient-reversal (for DANN), and mixed tanh/Gumbel-softmax outputs
//!   (for the CTGAN-style generator).
//! * [`norm`] — [`BatchNorm1d`](norm::BatchNorm1d) and
//!   [`Dropout`](norm::Dropout).
//! * [`sequential`] — [`Sequential`] container.
//! * [`plan`] — compiled, precision-generic inference plans
//!   ([`InferPlan`]): fused stages over the `fsda_linalg` kernels, with a
//!   bit-exact `f64` path and an opt-in fast `f32` path.
//! * [`optim`] — [`Sgd`](optim::Sgd) and [`Adam`](optim::Adam) (+ weight
//!   decay, as used by the paper).
//! * [`loss`] — BCE-with-logits, softmax cross-entropy, MSE,
//!   supervised-contrastive.
//! * [`train`] — mini-batch iteration helpers.
//! * [`watchdog`] — divergence detection with snapshot rollback for
//!   unstable (adversarial) training loops.
//!
//! # Example
//!
//! ```
//! use fsda_linalg::{Matrix, SeededRng};
//! use fsda_nn::layer::{Activation, Dense};
//! use fsda_nn::loss::mse;
//! use fsda_nn::optim::{Adam, Optimizer};
//! use fsda_nn::Sequential;
//!
//! let mut rng = SeededRng::new(0);
//! let mut net = Sequential::new();
//! net.push(Dense::new(1, 8, &mut rng));
//! net.push(Activation::relu());
//! net.push(Dense::new(8, 1, &mut rng));
//!
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
//! let y = Matrix::from_rows(&[&[1.0], &[3.0], &[5.0]]);
//! let mut opt = Adam::new(1e-2);
//! for _ in 0..200 {
//!     let pred = net.forward(&x, true);
//!     let (_, grad) = mse(&pred, &y);
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.step(&mut net.params_mut());
//! }
//! let pred = net.forward(&x, false);
//! assert!((pred.get(1, 0) - 3.0).abs() < 0.5);
//! ```

pub mod layer;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod plan;
pub mod sequential;
pub mod state;
pub mod train;
pub mod watchdog;

pub use layer::Layer;
pub use plan::{InferPlan, InferPrecision, PlanError, PlanOp};
pub use sequential::Sequential;
pub use watchdog::{DivergenceWatchdog, TrainOutcome, WatchdogConfig, WatchdogVerdict};

/// A mutable view of one parameter tensor and its accumulated gradient.
///
/// Optimizers receive a `Vec<Param>` whose order is stable across steps, so
/// per-parameter state (Adam moments) can be kept positionally.
pub struct Param<'a> {
    /// The parameter values.
    pub value: &'a mut fsda_linalg::Matrix,
    /// The accumulated gradient (same shape as `value`).
    pub grad: &'a mut fsda_linalg::Matrix,
}

impl std::fmt::Debug for Param<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Param")
            .field("shape", &self.value.shape())
            .finish()
    }
}
