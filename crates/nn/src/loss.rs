//! Loss functions. Each returns `(scalar_loss, gradient_wrt_input)` with the
//! gradient already averaged over the batch, ready to feed
//! [`crate::Sequential::backward`].

use crate::layer::sigmoid;
use fsda_linalg::Matrix;

/// Mean-squared error `mean((pred - target)^2)`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    let n = pred.as_slice().len().max(1) as f64;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for ((g, &p), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(target.as_slice())
    {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Binary cross-entropy on **logits** (numerically stable):
/// `mean(max(z,0) - z*t + log(1 + exp(-|z|)))`.
///
/// `target` entries must be in `[0, 1]` (usually 0/1 labels, but soft labels
/// are supported).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn bce_with_logits(logits: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(
        logits.shape(),
        target.shape(),
        "bce_with_logits: shape mismatch"
    );
    let n = logits.as_slice().len().max(1) as f64;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0;
    for ((g, &z), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(logits.as_slice())
        .zip(target.as_slice())
    {
        debug_assert!((0.0..=1.0).contains(&t), "bce target must be in [0,1]");
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        *g = (sigmoid(z) - t) / n;
    }
    (loss / n, grad)
}

/// Row-wise softmax of a logits matrix.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Softmax cross-entropy on logits against integer class labels.
///
/// Returns the mean negative log-likelihood and the batch-averaged gradient
/// `softmax(z) - onehot(y)` per row.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn cross_entropy(logits: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "cross_entropy: label count mismatch"
    );
    let probs = softmax(logits);
    let n = logits.rows().max(1) as f64;
    let mut grad = probs.clone();
    let mut loss = 0.0;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < logits.cols(), "cross_entropy: label {y} out of range");
        loss -= probs.get(r, y).max(1e-15).ln();
        grad.set(r, y, grad.get(r, y) - 1.0);
    }
    grad.map_inplace(|v| v / n);
    (loss / n, grad)
}

/// Weighted softmax cross-entropy: like [`cross_entropy`] but each sample
/// contributes with weight `w_i` (normalized by the weight sum). Used by the
/// S&T baseline, which up-weights the few target-domain shots.
///
/// # Panics
///
/// Panics if lengths disagree or all weights are zero.
pub fn weighted_cross_entropy(logits: &Matrix, labels: &[usize], weights: &[f64]) -> (f64, Matrix) {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "weighted_cross_entropy: label count mismatch"
    );
    assert_eq!(
        weights.len(),
        logits.rows(),
        "weighted_cross_entropy: weight count mismatch"
    );
    let wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0, "weighted_cross_entropy: weights sum to zero");
    let probs = softmax(logits);
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0;
    for (r, (&y, &w)) in labels.iter().zip(weights).enumerate() {
        assert!(
            y < logits.cols(),
            "weighted_cross_entropy: label {y} out of range"
        );
        loss -= w * probs.get(r, y).max(1e-15).ln();
        for c in 0..logits.cols() {
            let indicator = if c == y { 1.0 } else { 0.0 };
            grad.set(r, c, w * (probs.get(r, c) - indicator) / wsum);
        }
    }
    (loss / wsum, grad)
}

/// Supervised contrastive loss (Khosla et al.) over a batch of L2-normalized
/// embeddings, as used by the SCL baseline.
///
/// For each anchor `i`, positives are the other samples with the same label;
/// similarity is the dot product divided by `temperature`. Returns the mean
/// loss over anchors that have at least one positive, and the gradient with
/// respect to the (unnormalized) embeddings, including the normalization
/// Jacobian.
///
/// # Panics
///
/// Panics if `labels.len() != embeddings.rows()` or `temperature <= 0`.
pub fn supervised_contrastive(
    embeddings: &Matrix,
    labels: &[usize],
    temperature: f64,
) -> (f64, Matrix) {
    assert_eq!(
        labels.len(),
        embeddings.rows(),
        "supervised_contrastive: label mismatch"
    );
    assert!(
        temperature > 0.0,
        "supervised_contrastive: temperature must be positive"
    );
    let n = embeddings.rows();
    let d = embeddings.cols();
    // L2-normalize rows, keeping norms for the Jacobian.
    let mut z = embeddings.clone();
    let mut norms = vec![0.0; n];
    for (r, slot) in norms.iter_mut().enumerate() {
        let norm = fsda_linalg::matrix::norm(z.row(r)).max(1e-12);
        *slot = norm;
        for v in z.row_mut(r) {
            *v /= norm;
        }
    }
    // Pairwise similarities (symmetric: one triangle computed, then mirrored).
    let sim = z.gram().scale(1.0 / temperature);
    let mut grad_z = Matrix::zeros(n, d);
    let mut loss = 0.0;
    let mut anchors = 0usize;
    for i in 0..n {
        let positives: Vec<usize> = (0..n)
            .filter(|&j| j != i && labels[j] == labels[i])
            .collect();
        if positives.is_empty() {
            continue;
        }
        anchors += 1;
        // log-sum-exp over all j != i.
        let mut max_s = f64::NEG_INFINITY;
        for j in 0..n {
            if j != i {
                max_s = max_s.max(sim.get(i, j));
            }
        }
        let mut denom = 0.0;
        for j in 0..n {
            if j != i {
                denom += (sim.get(i, j) - max_s).exp();
            }
        }
        let log_denom = max_s + denom.ln();
        let p_count = positives.len() as f64;
        for &p in &positives {
            loss += -(sim.get(i, p) - log_denom) / p_count;
        }
        // Gradient wrt normalized embeddings z_i and z_j.
        for j in 0..n {
            if j == i {
                continue;
            }
            let softmax_ij = (sim.get(i, j) - log_denom).exp();
            let pos_ij = if labels[j] == labels[i] {
                1.0 / p_count
            } else {
                0.0
            };
            let coeff = (softmax_ij - pos_ij) / temperature;
            // dL/dz_i += coeff * z_j ; dL/dz_j += coeff * z_i
            for c in 0..d {
                let gi = grad_z.get(i, c) + coeff * z.get(j, c);
                grad_z.set(i, c, gi);
                let gj = grad_z.get(j, c) + coeff * z.get(i, c);
                grad_z.set(j, c, gj);
            }
        }
    }
    if anchors == 0 {
        return (0.0, Matrix::zeros(n, d));
    }
    let scale = 1.0 / anchors as f64;
    loss *= scale;
    // Back through the L2 normalization: dL/dx = (I - z z^T)/||x|| * dL/dz.
    let mut grad = Matrix::zeros(n, d);
    for (r, &norm_r) in norms.iter().enumerate() {
        let zr = z.row(r);
        let gr: Vec<f64> = grad_z.row(r).iter().map(|&g| g * scale).collect();
        let zg: f64 = zr.iter().zip(&gr).map(|(&a, &b)| a * b).sum();
        for c in 0..d {
            grad.set(r, c, (gr[c] - zr[c] * zg) / norm_r);
        }
    }
    (loss, grad)
}

/// Class-conditional (linear) maximum mean discrepancy, the metric half of
/// the FMAA baseline: for every class that has rows from **both** domains
/// in the batch, the squared distance between the domains' class-mean
/// embeddings is penalized, pulling same-class clusters together across
/// domains while leaving other classes untouched.
///
/// `is_target[i]` marks target-domain rows. FMAA's *label self-correction*
/// happens upstream: the caller passes (possibly pseudo-) labels it has
/// already corrected with the current classifier's confident predictions.
/// Returns the mean squared mean-distance over contributing classes and
/// the gradient with respect to the embeddings; both are zero when no
/// class spans the two domains (e.g. a batch from a single domain).
///
/// # Panics
///
/// Panics if `labels` or `is_target` disagree with `embeddings.rows()`.
pub fn class_conditional_mmd(
    embeddings: &Matrix,
    labels: &[usize],
    is_target: &[bool],
) -> (f64, Matrix) {
    assert_eq!(
        labels.len(),
        embeddings.rows(),
        "class_conditional_mmd: label count mismatch"
    );
    assert_eq!(
        is_target.len(),
        embeddings.rows(),
        "class_conditional_mmd: domain flag count mismatch"
    );
    let n = embeddings.rows();
    let d = embeddings.cols();
    let num_classes = labels.iter().map(|&y| y + 1).max().unwrap_or(0);
    let mut grad = Matrix::zeros(n, d);
    if num_classes == 0 {
        return (0.0, grad);
    }
    // Per-(class, domain) counts and mean embeddings.
    let mut count = vec![[0usize; 2]; num_classes];
    let mut mean = vec![[vec![0.0; d], vec![0.0; d]]; num_classes];
    for (r, (&y, &t)) in labels.iter().zip(is_target).enumerate() {
        let dom = usize::from(t);
        count[y][dom] += 1;
        for (m, &v) in mean[y][dom].iter_mut().zip(embeddings.row(r)) {
            *m += v;
        }
    }
    for (c, slots) in mean.iter_mut().enumerate() {
        for (dom, m) in slots.iter_mut().enumerate() {
            if count[c][dom] > 0 {
                let inv = 1.0 / count[c][dom] as f64;
                for v in m.iter_mut() {
                    *v *= inv;
                }
            }
        }
    }
    let active = count.iter().filter(|c| c[0] > 0 && c[1] > 0).count();
    if active == 0 {
        return (0.0, grad);
    }
    let scale = 1.0 / active as f64;
    let mut loss = 0.0;
    // diff_c = mu_src,c - mu_tgt,c; L = mean_c ||diff_c||^2, so
    // dL/de_i = +/- 2 * diff_c / (n_{c,dom} * active) per member row.
    let mut diffs = vec![Vec::new(); num_classes];
    for (c, slots) in mean.iter().enumerate() {
        if count[c][0] > 0 && count[c][1] > 0 {
            let diff: Vec<f64> = slots[0]
                .iter()
                .zip(&slots[1])
                .map(|(&s, &t)| s - t)
                .collect();
            loss += diff.iter().map(|&v| v * v).sum::<f64>() * scale;
            diffs[c] = diff;
        }
    }
    for (r, (&y, &t)) in labels.iter().zip(is_target).enumerate() {
        if diffs[y].is_empty() {
            continue;
        }
        let dom = usize::from(t);
        let sign = if t { -1.0 } else { 1.0 };
        let coeff = sign * 2.0 * scale / count[y][dom] as f64;
        for (c, &dv) in diffs[y].iter().enumerate() {
            grad.set(r, c, grad.get(r, c) + coeff * dv);
        }
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsda_linalg::SeededRng;

    #[test]
    fn mse_zero_at_target() {
        let y = Matrix::from_rows(&[&[1.0, 2.0]]);
        let (loss, grad) = mse(&y, &y);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn mse_gradient_direction() {
        let pred = Matrix::from_rows(&[&[2.0]]);
        let target = Matrix::from_rows(&[&[0.0]]);
        let (loss, grad) = mse(&pred, &target);
        assert_eq!(loss, 4.0);
        assert!(grad.get(0, 0) > 0.0, "gradient points away from target");
    }

    #[test]
    fn bce_matches_manual_computation() {
        let z = Matrix::from_rows(&[&[0.0]]);
        let t = Matrix::from_rows(&[&[1.0]]);
        let (loss, grad) = bce_with_logits(&z, &t);
        assert!((loss - (2.0_f64).ln()).abs() < 1e-12);
        assert!((grad.get(0, 0) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn bce_is_stable_for_large_logits() {
        let z = Matrix::from_rows(&[&[1000.0, -1000.0]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (loss, grad) = bce_with_logits(&z, &t);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.is_finite());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let z = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]]);
        let p = softmax(&z);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!((p.get(1, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_perfect_prediction_small_loss() {
        let z = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (loss, _) = cross_entropy(&z, &[0, 1]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_diff() {
        let z = Matrix::from_rows(&[&[0.3, -0.2, 0.5], &[1.0, 0.0, -1.0]]);
        let labels = [2usize, 0usize];
        let (_, grad) = cross_entropy(&z, &labels);
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..3 {
                let mut zp = z.clone();
                zp.set(i, j, z.get(i, j) + eps);
                let mut zm = z.clone();
                zm.set(i, j, z.get(i, j) - eps);
                let (lp, _) = cross_entropy(&zp, &labels);
                let (lm, _) = cross_entropy(&zm, &labels);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (grad.get(i, j) - numeric).abs() < 1e-6,
                    "ce grad mismatch ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn weighted_ce_upweights_samples() {
        let z = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]]);
        // Both samples mispredicted equally; weights skew the gradient.
        let (_, g1) = weighted_cross_entropy(&z, &[0, 1], &[1.0, 1.0]);
        let (_, g9) = weighted_cross_entropy(&z, &[0, 1], &[9.0, 1.0]);
        assert!(g9.get(0, 0).abs() > g1.get(0, 0).abs());
        assert!(g9.get(1, 0).abs() < g1.get(1, 0).abs());
    }

    #[test]
    fn weighted_ce_reduces_to_ce_with_unit_weights() {
        let z = Matrix::from_rows(&[&[0.2, -0.1], &[0.4, 0.9]]);
        let (l1, g1) = cross_entropy(&z, &[0, 1]);
        let (l2, g2) = weighted_cross_entropy(&z, &[0, 1], &[1.0, 1.0]);
        assert!((l1 - l2).abs() < 1e-12);
        assert!(g1.try_sub(&g2).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn supcon_loss_lower_for_clustered_embeddings() {
        // Well-separated same-class embeddings should have lower loss than
        // mixed ones.
        let clustered =
            Matrix::from_rows(&[&[1.0, 0.0], &[0.99, 0.01], &[0.0, 1.0], &[0.01, 0.99]]);
        let mixed = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let labels = [0, 0, 1, 1];
        let (l_good, _) = supervised_contrastive(&clustered, &labels, 0.5);
        let (l_bad, _) = supervised_contrastive(&mixed, &labels, 0.5);
        assert!(l_good < l_bad, "clustered {l_good} vs mixed {l_bad}");
    }

    #[test]
    fn mmd_zero_when_class_means_coincide() {
        // Source and target rows of each class share the same mean.
        let emb = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 2.0], &[0.0, 2.0]]);
        let labels = [0, 0, 1, 1];
        let is_target = [false, true, false, true];
        let (loss, grad) = class_conditional_mmd(&emb, &labels, &is_target);
        assert!(loss.abs() < 1e-12);
        assert!(grad.max_abs() < 1e-12);
    }

    #[test]
    fn mmd_ignores_classes_in_one_domain() {
        // Class 1 only exists in the source; it must not contribute.
        let emb = Matrix::from_rows(&[&[1.0, 0.0], &[3.0, 0.0], &[9.0, 9.0]]);
        let labels = [0, 0, 1];
        let is_target = [false, true, false];
        let (loss, grad) = class_conditional_mmd(&emb, &labels, &is_target);
        assert!((loss - 4.0).abs() < 1e-12, "||1-3||^2 over one class");
        assert_eq!(grad.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn mmd_zero_for_single_domain_batch() {
        let emb = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let (loss, grad) = class_conditional_mmd(&emb, &[0, 0], &[false, false]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn mmd_gradient_matches_finite_diff() {
        let mut rng = SeededRng::new(21);
        let emb = Matrix::from_fn(6, 3, |_, _| rng.normal(0.0, 1.0));
        let labels = [0, 1, 0, 1, 0, 1];
        let is_target = [false, false, true, true, false, true];
        let (_, grad) = class_conditional_mmd(&emb, &labels, &is_target);
        let eps = 1e-6;
        for i in 0..6 {
            for j in 0..3 {
                let mut ep = emb.clone();
                ep.set(i, j, emb.get(i, j) + eps);
                let mut em = emb.clone();
                em.set(i, j, emb.get(i, j) - eps);
                let (lp, _) = class_conditional_mmd(&ep, &labels, &is_target);
                let (lm, _) = class_conditional_mmd(&em, &labels, &is_target);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (grad.get(i, j) - numeric).abs() < 1e-6,
                    "mmd grad mismatch ({i},{j}): {} vs {numeric}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn supcon_gradient_matches_finite_diff() {
        let mut rng = SeededRng::new(8);
        let emb = Matrix::from_fn(4, 3, |_, _| rng.normal(0.0, 1.0));
        let labels = [0, 1, 0, 1];
        let (_, grad) = supervised_contrastive(&emb, &labels, 0.7);
        let eps = 1e-6;
        for i in 0..4 {
            for j in 0..3 {
                let mut ep = emb.clone();
                ep.set(i, j, emb.get(i, j) + eps);
                let mut em = emb.clone();
                em.set(i, j, emb.get(i, j) - eps);
                let (lp, _) = supervised_contrastive(&ep, &labels, 0.7);
                let (lm, _) = supervised_contrastive(&em, &labels, 0.7);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (grad.get(i, j) - numeric).abs() < 1e-5,
                    "supcon grad mismatch ({i},{j}): {} vs {numeric}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn supcon_no_positives_returns_zero() {
        let emb = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let (loss, grad) = supervised_contrastive(&emb, &[0, 1], 0.5);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }
}
