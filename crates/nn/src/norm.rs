//! Normalization and regularization layers: batch norm and dropout.

use crate::plan::PlanOp;
use crate::{Layer, Param};
use fsda_linalg::{Matrix, SeededRng};

/// 1-D batch normalization over feature columns.
///
/// During training, normalizes each column with the batch mean/variance and
/// updates exponential running statistics; at evaluation the running
/// statistics are used. Matches the CTGAN generator blocks
/// (`Dense -> BatchNorm -> ReLU`).
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: Matrix,
    beta: Matrix,
    grad_gamma: Matrix,
    grad_beta: Matrix,
    running_mean: Vec<f64>,
    running_var: Vec<f64>,
    momentum: f64,
    eps: f64,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Matrix,
    std_inv: Vec<f64>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `dim` features with momentum 0.9.
    pub fn new(dim: usize) -> Self {
        BatchNorm1d {
            gamma: Matrix::filled(1, dim, 1.0),
            beta: Matrix::zeros(1, dim),
            grad_gamma: Matrix::zeros(1, dim),
            grad_beta: Matrix::zeros(1, dim),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.9,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.cols()
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        let (n, d) = input.shape();
        debug_assert_eq!(d, self.dim(), "BatchNorm1d: dim mismatch");
        let (mean, var) = if train && n > 1 {
            let mean = input.col_means();
            let mut var = vec![0.0; d];
            for row in input.iter_rows() {
                for ((v, &x), &m) in var.iter_mut().zip(row).zip(&mean) {
                    let diff = x - m;
                    *v += diff * diff;
                }
            }
            for v in &mut var {
                *v /= n as f64; // biased variance, as in standard BN
            }
            for i in 0..d {
                self.running_mean[i] =
                    self.momentum * self.running_mean[i] + (1.0 - self.momentum) * mean[i];
                self.running_var[i] =
                    self.momentum * self.running_var[i] + (1.0 - self.momentum) * var[i];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };
        let std_inv: Vec<f64> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Matrix::zeros(n, d);
        let mut out = Matrix::zeros(n, d);
        for r in 0..n {
            let row = input.row(r);
            for c in 0..d {
                let xh = (row[c] - mean[c]) * std_inv[c];
                x_hat.set(r, c, xh);
                out.set(r, c, self.gamma.get(0, c) * xh + self.beta.get(0, c));
            }
        }
        if train {
            self.cache = Some(BnCache { x_hat, std_inv });
        }
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        let (n, d) = input.shape();
        debug_assert_eq!(d, self.dim(), "BatchNorm1d: dim mismatch");
        let std_inv: Vec<f64> = self
            .running_var
            .iter()
            .map(|&v| 1.0 / (v + self.eps).sqrt())
            .collect();
        let mut out = Matrix::zeros(n, d);
        for r in 0..n {
            let row = input.row(r);
            for c in 0..d {
                let xh = (row[c] - self.running_mean[c]) * std_inv[c];
                out.set(r, c, self.gamma.get(0, c) * xh + self.beta.get(0, c));
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm1d::backward before forward(train)");
        let (n, d) = grad_output.shape();
        let nf = n as f64;
        let mut grad_input = Matrix::zeros(n, d);
        for c in 0..d {
            let gamma = self.gamma.get(0, c);
            let mut sum_g = 0.0;
            let mut sum_gx = 0.0;
            for r in 0..n {
                let g = grad_output.get(r, c);
                sum_g += g;
                sum_gx += g * cache.x_hat.get(r, c);
            }
            self.grad_beta.set(0, c, self.grad_beta.get(0, c) + sum_g);
            self.grad_gamma
                .set(0, c, self.grad_gamma.get(0, c) + sum_gx);
            let k = gamma * cache.std_inv[c] / nf;
            for r in 0..n {
                let g = grad_output.get(r, c);
                let xh = cache.x_hat.get(r, c);
                grad_input.set(r, c, k * (nf * g - sum_g - xh * sum_gx));
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                value: &mut self.gamma,
                grad: &mut self.grad_gamma,
            },
            Param {
                value: &mut self.beta,
                grad: &mut self.grad_beta,
            },
        ]
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.gamma, &self.beta]
    }

    fn buffers(&self) -> Vec<&[f64]> {
        vec![&self.running_mean, &self.running_var]
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f64>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }

    fn num_params(&self) -> usize {
        2 * self.dim()
    }

    fn plan_op(&self) -> PlanOp {
        PlanOp::BatchNorm {
            mean: self.running_mean.clone(),
            var: self.running_var.clone(),
            eps: self.eps,
            gamma: self.gamma.row(0).to_vec(),
            beta: self.beta.row(0).to_vec(),
        }
    }
}

/// Inverted dropout: active only during training; evaluation is identity.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f64,
    rng: SeededRng,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer dropping each unit with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f64, rng: SeededRng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "Dropout: p must be in [0,1), got {p}"
        );
        Dropout { p, rng, mask: None }
    }

    /// Drop probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Matrix::from_fn(input.rows(), input.cols(), |_, _| {
            if self.rng.bernoulli(keep) {
                1.0 / keep
            } else {
                0.0
            }
        });
        let out = input
            .try_hadamard(&mask)
            .expect("same shape by construction");
        self.mask = Some(mask);
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.clone()
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => grad_output
                .try_hadamard(mask)
                .expect("same shape by construction"),
            None => grad_output.clone(),
        }
    }

    fn plan_op(&self) -> PlanOp {
        // Inverted dropout is the identity at inference time.
        PlanOp::Identity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batchnorm_normalizes_training_batch() {
        let mut bn = BatchNorm1d::new(2);
        let x = Matrix::from_rows(&[&[10.0, -5.0], &[20.0, -3.0], &[30.0, -1.0], &[40.0, 1.0]]);
        let y = bn.forward(&x, true);
        let means = y.col_means();
        for m in means {
            assert!(
                m.abs() < 1e-9,
                "batch-normalized mean should be ~0, got {m}"
            );
        }
        // Biased std of normalized output ~ 1.
        for c in 0..2 {
            let col = y.col(c);
            let var: f64 = col.iter().map(|v| v * v).sum::<f64>() / col.len() as f64;
            assert!((var - 1.0).abs() < 1e-3, "variance {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Matrix::from_rows(&[&[100.0], &[102.0], &[98.0], &[101.0]]);
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        // After enough updates the running mean approaches ~100.25, so a
        // sample at the mean maps near zero in eval mode.
        let y = bn.forward(&Matrix::from_rows(&[&[100.25]]), false);
        assert!(y.get(0, 0).abs() < 0.5, "eval output {}", y.get(0, 0));
    }

    #[test]
    fn batchnorm_gradient_matches_finite_diff() {
        let mut bn = BatchNorm1d::new(3);
        let x = Matrix::from_fn(5, 3, |i, j| (i as f64 + 1.0) * (j as f64 + 0.5) * 0.7);
        let out = bn.forward(&x, true);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        // Weight the output sum by position so the gradient isn't trivially
        // zero (sum of a normalized column is invariant to input shifts).
        let weights = Matrix::from_fn(out.rows(), out.cols(), |i, j| {
            ((i * 7 + j * 3) % 5) as f64 * 0.25 + 0.1
        });
        let analytic = {
            bn.zero_grad();
            bn.backward(&weights)
        };
        let _ = ones;
        let eps = 1e-5;
        let weighted_sum = |m: &Matrix, w: &Matrix| -> f64 {
            m.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(&a, &b)| a * b)
                .sum()
        };
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(i, j, x.get(i, j) + eps);
                let mut minus = x.clone();
                minus.set(i, j, x.get(i, j) - eps);
                let mut bn_p = BatchNorm1d::new(3);
                let mut bn_m = BatchNorm1d::new(3);
                let fp = weighted_sum(&bn_p.forward(&plus, true), &weights);
                let fm = weighted_sum(&bn_m.forward(&minus, true), &weights);
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (analytic.get(i, j) - numeric).abs() < 1e-4,
                    "bn grad mismatch at ({i},{j}): {} vs {numeric}",
                    analytic.get(i, j)
                );
            }
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, SeededRng::new(1));
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3, SeededRng::new(2));
        let x = Matrix::filled(200, 50, 1.0);
        let y = d.forward(&x, true);
        let mean: f64 = y.as_slice().iter().sum::<f64>() / y.as_slice().len() as f64;
        assert!(
            (mean - 1.0).abs() < 0.05,
            "inverted dropout keeps E[x]: {mean}"
        );
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, SeededRng::new(3));
        let x = Matrix::filled(4, 4, 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Matrix::filled(4, 4, 1.0));
        // Gradient is zero exactly where the output was dropped.
        for (o, gr) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*o == 0.0, *gr == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1)")]
    fn dropout_rejects_invalid_p() {
        let _ = Dropout::new(1.0, SeededRng::new(4));
    }
}
