//! Optimizers: SGD (with momentum) and Adam (with decoupled weight decay).

use crate::Param;
use fsda_linalg::Matrix;

/// A gradient-based parameter optimizer.
///
/// `step` consumes the current parameter/gradient views (in a stable order)
/// and updates the values in place. State (momentum, Adam moments) is kept
/// positionally, so the same network must be passed on every call.
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, params: &mut [Param<'_>]);

    /// The current learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "Sgd: lr must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "Sgd: momentum must be in [0,1)"
        );
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Param<'_>]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                for (vi, &gi) in v.as_mut_slice().iter_mut().zip(p.grad.as_slice()) {
                    *vi = self.momentum * *vi + gi;
                }
                p.value.axpy(-self.lr, v);
            } else {
                p.value.axpy(-self.lr, p.grad);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam optimizer with decoupled weight decay (AdamW-style).
///
/// The paper trains the GAN with learning rate `2e-4` and decay `1e-6`;
/// [`Adam::for_gan`] matches those defaults.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)` and no weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Self::with_decay(lr, 0.0)
    }

    /// Adam with decoupled weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `weight_decay < 0`.
    pub fn with_decay(lr: f64, weight_decay: f64) -> Self {
        assert!(lr > 0.0, "Adam: lr must be positive");
        assert!(
            weight_decay >= 0.0,
            "Adam: weight_decay must be non-negative"
        );
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The paper's GAN settings: `lr = 2e-4`, decay `1e-6`, betas
    /// `(0.5, 0.9)` (the CTGAN convention for adversarial stability).
    pub fn for_gan() -> Self {
        let mut a = Self::with_decay(2e-4, 1e-6);
        a.beta1 = 0.5;
        a.beta2 = 0.9;
        a
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Param<'_>]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let values = p.value.as_mut_slice();
            for (((mi, vi), &gi), val) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(p.grad.as_slice())
                .zip(values)
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *val -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * *val);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Scales all gradients so their global L2 norm is at most `max_norm`,
/// returning the pre-clip norm. Non-finite gradient entries are zeroed
/// first — one NaN cell would otherwise make the norm (and every scaled
/// gradient) NaN, defeating the clip.
///
/// Call between `backward` and `Optimizer::step`:
///
/// ```
/// use fsda_linalg::{Matrix, SeededRng};
/// use fsda_nn::layer::Dense;
/// use fsda_nn::optim::{clip_grad_norm, Adam, Optimizer};
/// use fsda_nn::Sequential;
///
/// let mut rng = SeededRng::new(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(2, 2, &mut rng));
/// let x = Matrix::from_rows(&[&[1.0, 2.0]]);
/// let out = net.forward(&x, true);
/// net.backward(&out); // some loss gradient
/// let mut opt = Adam::new(1e-3);
/// let norm = clip_grad_norm(&mut net.params_mut(), 1.0);
/// assert!(norm.is_finite());
/// opt.step(&mut net.params_mut());
/// ```
pub fn clip_grad_norm(params: &mut [Param<'_>], max_norm: f64) -> f64 {
    let mut sq_sum = 0.0;
    for p in params.iter_mut() {
        for g in p.grad.as_mut_slice() {
            if !g.is_finite() {
                *g = 0.0;
            }
            sq_sum += *g * *g;
        }
    }
    let norm = sq_sum.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            for g in p.grad.as_mut_slice() {
                *g *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Dense};
    use crate::loss::mse;
    use crate::Sequential;
    use fsda_linalg::{Matrix, SeededRng};

    fn quadratic_descent(opt: &mut dyn Optimizer) -> f64 {
        // Minimize f(w) = (w - 3)^2 elementwise.
        let mut w = Matrix::filled(1, 1, 0.0);
        let mut g = Matrix::zeros(1, 1);
        for _ in 0..500 {
            let grad = 2.0 * (w.get(0, 0) - 3.0);
            g.set(0, 0, grad);
            let mut params = [Param {
                value: &mut w,
                grad: &mut g,
            }];
            opt.step(&mut params);
        }
        w.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!((quadratic_descent(&mut opt) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!((quadratic_descent(&mut opt) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        assert!((quadratic_descent(&mut opt) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_weight_decay_shrinks_toward_zero() {
        // With pure decay (zero gradient) the parameter should shrink.
        let mut opt = Adam::with_decay(0.1, 0.5);
        let mut w = Matrix::filled(1, 1, 1.0);
        let mut g = Matrix::zeros(1, 1);
        for _ in 0..50 {
            let mut params = [Param {
                value: &mut w,
                grad: &mut g,
            }];
            opt.step(&mut params);
        }
        assert!(
            w.get(0, 0).abs() < 0.1,
            "decay should shrink weight: {}",
            w.get(0, 0)
        );
    }

    #[test]
    fn adam_trains_network_to_fit_xor() {
        let mut rng = SeededRng::new(11);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, &mut rng));
        net.push(Activation::tanh());
        net.push(Dense::new(16, 1, &mut rng));
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut opt = Adam::new(0.02);
        let mut last = f64::MAX;
        for _ in 0..800 {
            let pred = net.forward(&x, true);
            let (loss, grad) = mse(&pred, &y);
            net.zero_grad();
            net.backward(&grad);
            opt.step(&mut net.params_mut());
            last = loss;
        }
        assert!(last < 0.02, "XOR should be learnable, final loss {last}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(1e-3);
        assert_eq!(opt.learning_rate(), 1e-3);
        opt.set_learning_rate(5e-4);
        assert_eq!(opt.learning_rate(), 5e-4);
        let gan = Adam::for_gan();
        assert_eq!(gan.learning_rate(), 2e-4);
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn rejects_nonpositive_lr() {
        let _ = Adam::new(0.0);
    }
}
