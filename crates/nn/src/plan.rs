//! Compiled, precision-generic inference plans.
//!
//! A [`Sequential`] network is an open-ended stack of boxed [`Layer`]s;
//! its [`Sequential::infer`] walks that stack layer by layer, transposing
//! weights and allocating an intermediate matrix per layer. An
//! [`InferPlan`] is the closed, immutable alternative: at compile time
//! (once per fitted model, not per batch) every supported layer is lowered
//! to a [`PlanOp`], the ops are fused (`Dense -> Activation` and
//! `BatchNorm -> Activation` become single stages with a fused epilogue),
//! weights are pre-transposed into the kernels' `(in, out)` layout, and
//! the whole stack is materialized at **both** `f64` and `f32` so callers
//! pick a precision per call with [`InferPrecision`].
//!
//! # Precision contract
//!
//! * [`InferPrecision::F64Exact`] (the default) is **bit-identical** to the
//!   legacy layer-by-layer path and to [`InferPlan::infer_reference`]: the
//!   kernels preserve the naive reference's accumulation order, zero-skip,
//!   and two-rounding multiply/add (see [`fsda_linalg::kernel`]).
//! * [`InferPrecision::F32Fast`] converts weights once at compile time and
//!   inputs once per call, runs the 8-lane FMA `f32` kernels, and converts
//!   the output back to `f64`. Divergence from the exact path is bounded
//!   and benchmarked (`BENCH_runtime.json`, `f32_divergence`), not assumed.
//!
//! Networks containing a layer that does not lower (e.g. a Gumbel-softmax
//! discrete head, which needs per-block softmax) fail to compile with
//! [`PlanError::Unsupported`]; callers keep the legacy path as fallback.

use crate::{Layer, Sequential};
use fsda_linalg::kernel::{Act, Element};
use fsda_linalg::Matrix;

/// Numeric precision for a compiled forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferPrecision {
    /// Exact `f64` kernels, bit-identical to the legacy layer-by-layer
    /// inference path. The default.
    #[default]
    F64Exact,
    /// Single-precision kernels (8-lane FMA on AVX2): roughly twice the
    /// arithmetic throughput and half the memory traffic, with a small,
    /// measured divergence from the exact path.
    F32Fast,
}

impl InferPrecision {
    /// Short label used in telemetry counter names and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            InferPrecision::F64Exact => "f64_exact",
            InferPrecision::F32Fast => "f32_fast",
        }
    }
}

/// Why a network could not be compiled into an [`InferPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A layer has no plan lowering (the payload names it).
    Unsupported(&'static str),
    /// Adjacent ops disagree about the feature dimension.
    DimMismatch {
        /// Dimension produced by the previous op.
        expected: usize,
        /// Dimension the offending op was built for.
        got: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Unsupported(what) => write!(f, "no plan lowering for {what}"),
            PlanError::DimMismatch { expected, got } => {
                write!(f, "plan dim mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A layer lowered to plan form (returned by [`Layer::plan_op`]).
///
/// `Identity` ops (dropout at eval, gradient reversal) are dropped during
/// compilation; `Nested` flattens; `Unsupported` aborts it.
#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Affine layer `y = x W^T + b` with `weight` in the layer's native
    /// `(out, in)` layout.
    Dense {
        /// Weight matrix, `(out, in)` row-major.
        weight: Matrix,
        /// Bias vector of length `out`.
        bias: Vec<f64>,
    },
    /// Batch normalization in evaluation mode (running statistics).
    BatchNorm {
        /// Running per-feature means.
        mean: Vec<f64>,
        /// Running per-feature (biased) variances.
        var: Vec<f64>,
        /// Variance floor added before the square root.
        eps: f64,
        /// Learned scale.
        gamma: Vec<f64>,
        /// Learned shift.
        beta: Vec<f64>,
    },
    /// Elementwise activation.
    Activation(Act),
    /// A layer that is the identity at inference time.
    Identity,
    /// A container's children, in order.
    Nested(Vec<PlanOp>),
    /// A layer with no plan lowering; the payload names the layer kind.
    Unsupported(&'static str),
}

/// One fused, precision-`T` execution stage.
#[derive(Debug, Clone)]
enum Stage<T> {
    /// `y = act(x · wt + bias)` with `wt` pre-transposed to `(in, out)`.
    /// `w` keeps the layer's native `(out, in)` layout for the single-row
    /// GEMV fast path (consulted only when `T::GEMV_MATCHES_GEMM`).
    Affine {
        in_dim: usize,
        out_dim: usize,
        w: Vec<T>,
        wt: Vec<T>,
        bias: Vec<T>,
        act: Act,
    },
    /// `y = act(gamma * (x - mean) * std_inv + beta)` per feature, with
    /// `std_inv = 1 / sqrt(var + eps)` precomputed at compile time.
    Norm {
        mean: Vec<T>,
        std_inv: Vec<T>,
        gamma: Vec<T>,
        beta: Vec<T>,
        act: Act,
    },
    /// A bare elementwise activation that had nothing to fuse into.
    Act(Act),
}

impl Stage<f64> {
    fn to_f32(&self) -> Stage<f32> {
        let narrow = |v: &[f64]| v.iter().map(|&x| x as f32).collect::<Vec<f32>>();
        match self {
            Stage::Affine {
                in_dim,
                out_dim,
                w,
                wt,
                bias,
                act,
            } => Stage::Affine {
                in_dim: *in_dim,
                out_dim: *out_dim,
                w: narrow(w),
                wt: narrow(wt),
                bias: narrow(bias),
                act: *act,
            },
            Stage::Norm {
                mean,
                std_inv,
                gamma,
                beta,
                act,
            } => Stage::Norm {
                mean: narrow(mean),
                std_inv: narrow(std_inv),
                gamma: narrow(gamma),
                beta: narrow(beta),
                act: *act,
            },
            Stage::Act(act) => Stage::Act(*act),
        }
    }
}

/// An immutable, compiled forward pass at both precisions.
///
/// # Example
///
/// ```
/// use fsda_linalg::{Matrix, SeededRng};
/// use fsda_nn::layer::{Activation, Dense};
/// use fsda_nn::plan::{InferPlan, InferPrecision};
/// use fsda_nn::Sequential;
///
/// let mut rng = SeededRng::new(7);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8, &mut rng));
/// net.push(Activation::relu());
/// net.push(Dense::new(8, 2, &mut rng));
///
/// let plan = InferPlan::compile(&net).unwrap();
/// let x = Matrix::from_fn(5, 4, |i, j| (i as f64 - j as f64) * 0.3);
/// let exact = plan.infer(&x, InferPrecision::F64Exact);
/// // The compiled f64 path is bit-identical to the layer-by-layer path.
/// assert_eq!(exact.as_slice(), net.infer(&x).as_slice());
/// ```
#[derive(Debug, Clone)]
pub struct InferPlan {
    stages64: Vec<Stage<f64>>,
    stages32: Vec<Stage<f32>>,
    in_dim: Option<usize>,
    out_dim: Option<usize>,
}

impl InferPlan {
    /// Compiles a [`Sequential`] network.
    pub fn compile(net: &Sequential) -> Result<Self, PlanError> {
        Self::from_op(Layer::plan_op(net))
    }

    /// Compiles a single layer (e.g. a bare [`crate::layer::Dense`] head).
    pub fn compile_layer(layer: &dyn Layer) -> Result<Self, PlanError> {
        Self::from_op(layer.plan_op())
    }

    /// Compiles an explicit op tree.
    pub fn from_op(op: PlanOp) -> Result<Self, PlanError> {
        let mut ops = Vec::new();
        flatten(op, &mut ops)?;
        let mut stages64: Vec<Stage<f64>> = Vec::new();
        let mut in_dim = None;
        let mut dim: Option<usize> = None;
        for op in ops {
            match op {
                PlanOp::Dense { weight, bias } => {
                    let (out_d, in_d) = weight.shape();
                    if let Some(d) = dim {
                        if d != in_d {
                            return Err(PlanError::DimMismatch {
                                expected: d,
                                got: in_d,
                            });
                        }
                    }
                    in_dim.get_or_insert(in_d);
                    stages64.push(Stage::Affine {
                        in_dim: in_d,
                        out_dim: out_d,
                        wt: weight.transpose().as_slice().to_vec(),
                        w: weight.as_slice().to_vec(),
                        bias,
                        act: Act::Identity,
                    });
                    dim = Some(out_d);
                }
                PlanOp::BatchNorm {
                    mean,
                    var,
                    eps,
                    gamma,
                    beta,
                } => {
                    let d = mean.len();
                    if let Some(prev) = dim {
                        if prev != d {
                            return Err(PlanError::DimMismatch {
                                expected: prev,
                                got: d,
                            });
                        }
                    }
                    in_dim.get_or_insert(d);
                    // Precompute 1/sqrt(var + eps) exactly as the layer does
                    // per call, so the per-element math is unchanged.
                    let std_inv = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
                    stages64.push(Stage::Norm {
                        mean,
                        std_inv,
                        gamma,
                        beta,
                        act: Act::Identity,
                    });
                    dim = Some(d);
                }
                PlanOp::Activation(act) => match stages64.last_mut() {
                    Some(Stage::Affine { act: slot, .. } | Stage::Norm { act: slot, .. })
                        if *slot == Act::Identity =>
                    {
                        *slot = act;
                    }
                    _ => stages64.push(Stage::Act(act)),
                },
                PlanOp::Identity | PlanOp::Nested(_) | PlanOp::Unsupported(_) => {
                    unreachable!("flatten removes structural ops")
                }
            }
        }
        let stages32 = stages64.iter().map(Stage::to_f32).collect();
        Ok(InferPlan {
            stages64,
            stages32,
            in_dim,
            out_dim: dim,
        })
    }

    /// Input width the plan expects (`None` when no stage fixes it).
    pub fn in_dim(&self) -> Option<usize> {
        self.in_dim
    }

    /// Output width the plan produces (`None` when no stage fixes it).
    pub fn out_dim(&self) -> Option<usize> {
        self.out_dim
    }

    /// Number of fused stages (after dropping identities).
    pub fn num_stages(&self) -> usize {
        self.stages64.len()
    }

    /// Runs the compiled forward pass at the requested precision.
    ///
    /// `F64Exact` is bit-identical to the layer-by-layer path;
    /// `F32Fast` converts in/out once and runs the `f32` kernels.
    pub fn infer(&self, input: &Matrix, precision: InferPrecision) -> Matrix {
        match precision {
            InferPrecision::F64Exact => run(&self.stages64, input),
            InferPrecision::F32Fast => run(&self.stages32, input),
        }
    }

    /// The pristine legacy forward pass: per-stage weight materialization,
    /// [`Matrix::matmul_naive`] (the workspace's pre-kernel `ikj` loop),
    /// and separate bias / activation / norm passes — exactly the legacy
    /// layer chain's cost profile. This is the test reference; it is
    /// bit-identical to `infer(x, F64Exact)`.
    pub fn infer_reference(&self, input: &Matrix) -> Matrix {
        self.unfused_forward(input, Matrix::matmul_naive)
    }

    /// The textbook naive forward pass: identical to
    /// [`InferPlan::infer_reference`] except the matrix product is the
    /// `ijk` dot-product triple loop ([`Matrix::matmul_textbook`]). Still
    /// bit-identical to `infer(x, F64Exact)`; this is the "naive-f64"
    /// baseline the `reconstruction_kernels` bench section measures the
    /// blocked kernels against.
    pub fn infer_textbook(&self, input: &Matrix) -> Matrix {
        self.unfused_forward(input, Matrix::matmul_textbook)
    }

    /// Shared unfused executor behind the two reference paths: `matmul`
    /// picks the triple-loop flavor; everything else (per-call weight
    /// materialization, separate bias/activation/norm passes) is common.
    fn unfused_forward(&self, input: &Matrix, matmul: fn(&Matrix, &Matrix) -> Matrix) -> Matrix {
        let mut cur = input.clone();
        for stage in &self.stages64 {
            match stage {
                Stage::Affine {
                    in_dim,
                    out_dim,
                    wt,
                    bias,
                    act,
                    ..
                } => {
                    // Re-materializing the weights per call mirrors the
                    // legacy path's per-call `weight.transpose()`.
                    let w = Matrix::from_vec(*in_dim, *out_dim, wt.clone());
                    let mut out = matmul(&cur, &w);
                    for r in 0..out.rows() {
                        for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                            *o += b;
                        }
                    }
                    cur = out.map(|x| act.eval_f64(x));
                }
                Stage::Norm {
                    mean,
                    std_inv,
                    gamma,
                    beta,
                    act,
                } => {
                    let d = mean.len();
                    let mut out = Matrix::zeros(cur.rows(), d);
                    for r in 0..cur.rows() {
                        let row = cur.row(r);
                        for c in 0..d {
                            let xh = (row[c] - mean[c]) * std_inv[c];
                            out.set(r, c, gamma[c] * xh + beta[c]);
                        }
                    }
                    cur = out.map(|x| act.eval_f64(x));
                }
                Stage::Act(act) => cur = cur.map(|x| act.eval_f64(x)),
            }
        }
        cur
    }
}

/// Flattens nested ops, drops identities, and rejects unsupported layers.
fn flatten(op: PlanOp, out: &mut Vec<PlanOp>) -> Result<(), PlanError> {
    match op {
        PlanOp::Identity => {}
        PlanOp::Nested(children) => {
            for child in children {
                flatten(child, out)?;
            }
        }
        PlanOp::Unsupported(what) => return Err(PlanError::Unsupported(what)),
        other => out.push(other),
    }
    Ok(())
}

/// Executes the stage list at precision `T` with two ping-ponged batch
/// buffers (one allocation pair per call, regardless of depth).
fn run<T: Element>(stages: &[Stage<T>], input: &Matrix) -> Matrix {
    let rows = input.rows();
    let mut dim = input.cols();
    let mut cur: Vec<T> = input.as_slice().iter().map(|&v| T::from_f64(v)).collect();
    let mut next: Vec<T> = Vec::new();
    for stage in stages {
        match stage {
            Stage::Affine {
                in_dim,
                out_dim,
                w,
                wt,
                bias,
                act,
            } => {
                debug_assert_eq!(dim, *in_dim, "InferPlan: stage input dim mismatch");
                next.clear();
                next.resize(rows * out_dim, T::ZERO);
                if rows == 1 && T::GEMV_MATCHES_GEMM {
                    // Degenerate one-row batches (the serve request loop)
                    // take the GEMV kernel over the native-layout weights;
                    // the trait const guarantees bit-identity with the
                    // batched GEMM path at this precision.
                    T::gemv_nt(w, &cur, &mut next);
                } else {
                    T::gemm_nn(rows, *in_dim, *out_dim, &cur, wt, &mut next);
                }
                T::bias_act(&mut next, bias, *act);
                std::mem::swap(&mut cur, &mut next);
                dim = *out_dim;
            }
            Stage::Norm {
                mean,
                std_inv,
                gamma,
                beta,
                act,
            } => {
                debug_assert_eq!(dim, mean.len(), "InferPlan: norm dim mismatch");
                for row in cur.chunks_exact_mut(dim) {
                    let feats = row.iter_mut().zip(mean).zip(std_inv).zip(gamma).zip(beta);
                    for ((((v, &m), &s), &g), &b) in feats {
                        *v = T::eval_act(*act, T::batch_norm(*v, m, s, g, b));
                    }
                }
            }
            Stage::Act(act) => {
                for v in &mut cur {
                    *v = T::eval_act(*act, *v);
                }
            }
        }
    }
    Matrix::from_vec(rows, dim, cur.into_iter().map(Element::to_f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Dense, GradientReversal, MixedActivation, OutputSpec};
    use crate::norm::{BatchNorm1d, Dropout};
    use fsda_linalg::SeededRng;

    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    /// A generator-shaped net with every supported layer kind, with
    /// nontrivial batch-norm running statistics.
    fn rich_net(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(6, 16, &mut rng));
        net.push(BatchNorm1d::new(16));
        net.push(Activation::relu());
        net.push(Dropout::new(0.3, SeededRng::new(seed ^ 1)));
        net.push(Dense::new(16, 12, &mut rng));
        net.push(Activation::leaky_relu());
        net.push(GradientReversal::new(0.7));
        net.push(Dense::new(12, 5, &mut rng));
        net.push(MixedActivation::new(
            OutputSpec::continuous(5),
            0.5,
            SeededRng::new(seed ^ 2),
        ));
        // Populate the running statistics so Norm stages are nontrivial.
        let warm = Matrix::from_fn(32, 6, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.21 - 1.0);
        for _ in 0..5 {
            net.forward(&warm, true);
        }
        net
    }

    #[test]
    fn plan_f64_bit_identical_to_sequential() {
        let net = rich_net(11);
        let plan = InferPlan::compile(&net).expect("all layers lower");
        let x = Matrix::from_fn(9, 6, |i, j| (i as f64 * 0.4 - j as f64 * 0.7).sin());
        assert_bits_eq(&plan.infer(&x, InferPrecision::F64Exact), &net.infer(&x));
    }

    #[test]
    fn plan_reference_bit_identical_to_kernel_path() {
        let net = rich_net(12);
        let plan = InferPlan::compile(&net).expect("all layers lower");
        let x = Matrix::from_fn(7, 6, |i, j| (i as f64 - 2.0 * j as f64) * 0.31);
        assert_bits_eq(
            &plan.infer_reference(&x),
            &plan.infer(&x, InferPrecision::F64Exact),
        );
    }

    #[test]
    fn plan_fuses_activations() {
        let net = rich_net(13);
        let plan = InferPlan::compile(&net).unwrap();
        // Dense, Norm(+relu fused), Affine(+leaky fused), Affine(+tanh fused):
        // dropout and gradient reversal vanish, activations fuse.
        assert_eq!(plan.num_stages(), 4);
        assert_eq!(plan.in_dim(), Some(6));
        assert_eq!(plan.out_dim(), Some(5));
    }

    #[test]
    fn plan_f32_stays_close() {
        let net = rich_net(14);
        let plan = InferPlan::compile(&net).unwrap();
        let x = Matrix::from_fn(16, 6, |i, j| ((i + 2 * j) % 7) as f64 * 0.3 - 0.9);
        let exact = plan.infer(&x, InferPrecision::F64Exact);
        let fast = plan.infer(&x, InferPrecision::F32Fast);
        for (a, b) in exact.as_slice().iter().zip(fast.as_slice()) {
            assert!((a - b).abs() < 1e-4, "f32 drifted: {a} vs {b}");
        }
    }

    #[test]
    fn single_row_gemv_path_bit_identical_to_batched() {
        // The rows == 1 fast path must be indistinguishable from slicing a
        // row out of a batched call: a serve request that arrives alone has
        // to produce the same bits as the same request inside a batch.
        let net = rich_net(18);
        let plan = InferPlan::compile(&net).unwrap();
        let x = Matrix::from_fn(9, 6, |i, j| (i as f64 * 0.9 - j as f64 * 0.45).cos());
        let batched = plan.infer(&x, InferPrecision::F64Exact);
        for r in 0..x.rows() {
            let row = Matrix::from_rows(&[x.row(r)]);
            let single = plan.infer(&row, InferPrecision::F64Exact);
            assert_bits_eq(&single, &Matrix::from_rows(&[batched.row(r)]));
            // The fast path must also still match the legacy layer chain.
            assert_bits_eq(&single, &net.infer(&row));
        }
        // f32 keeps the FMA GEMM even for one row (GEMV_MATCHES_GEMM is
        // false there); it only has to stay within the measured envelope.
        for r in 0..x.rows() {
            let row = Matrix::from_rows(&[x.row(r)]);
            let single = plan.infer(&row, InferPrecision::F32Fast);
            let exact = plan.infer(&row, InferPrecision::F64Exact);
            for (a, b) in single.as_slice().iter().zip(exact.as_slice()) {
                assert!((a - b).abs() < 1e-4, "f32 single-row drifted: {a} vs {b}");
            }
        }
    }

    #[test]
    fn discrete_head_is_unsupported() {
        let mut rng = SeededRng::new(15);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 6, &mut rng));
        net.push(MixedActivation::new(
            OutputSpec {
                continuous: 2,
                discrete_blocks: vec![4],
            },
            0.5,
            SeededRng::new(16),
        ));
        match InferPlan::compile(&net) {
            Err(PlanError::Unsupported(_)) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let op = PlanOp::Nested(vec![
            PlanOp::Dense {
                weight: Matrix::zeros(4, 3),
                bias: vec![0.0; 4],
            },
            PlanOp::BatchNorm {
                mean: vec![0.0; 5],
                var: vec![1.0; 5],
                eps: 1e-5,
                gamma: vec![1.0; 5],
                beta: vec![0.0; 5],
            },
        ]);
        match InferPlan::from_op(op) {
            Err(PlanError::DimMismatch {
                expected: 4,
                got: 5,
            }) => {}
            other => panic!("expected DimMismatch, got {other:?}"),
        }
    }

    #[test]
    fn lone_dense_head_compiles() {
        let mut rng = SeededRng::new(17);
        let head = Dense::new(8, 3, &mut rng);
        let plan = InferPlan::compile_layer(&head).unwrap();
        let x = Matrix::from_fn(4, 8, |i, j| (i as f64 + j as f64) * 0.1);
        assert_bits_eq(&plan.infer(&x, InferPrecision::F64Exact), &head.infer(&x));
    }

    #[test]
    fn precision_labels_are_stable() {
        assert_eq!(InferPrecision::default(), InferPrecision::F64Exact);
        assert_eq!(InferPrecision::F64Exact.label(), "f64_exact");
        assert_eq!(InferPrecision::F32Fast.label(), "f32_fast");
    }

    #[test]
    fn plan_error_display_is_informative() {
        assert!(PlanError::Unsupported("foo").to_string().contains("foo"));
        assert!(PlanError::DimMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("2"));
    }
}
