//! Sequential container composing [`Layer`]s.

use crate::plan::PlanOp;
use crate::{Layer, Param};
use fsda_linalg::Matrix;

/// An ordered stack of layers applied one after another.
///
/// `Sequential` itself implements [`Layer`], so networks can be nested
/// (e.g. a shared feature extractor feeding two heads in DANN).
///
/// # Example
///
/// ```
/// use fsda_linalg::{Matrix, SeededRng};
/// use fsda_nn::layer::{Activation, Dense};
/// use fsda_nn::Sequential;
///
/// let mut rng = SeededRng::new(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8, &mut rng));
/// net.push(Activation::relu());
/// net.push(Dense::new(8, 2, &mut rng));
/// let out = net.forward(&Matrix::zeros(3, 4), false);
/// assert_eq!(out.shape(), (3, 2));
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the end of the stack.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer (useful when building dynamically).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass through every layer.
    pub fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Inference-only forward pass through every layer (`&self`).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Runs the backward pass in reverse layer order and returns the
    /// gradient with respect to the network input.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Collects mutable parameter views from all layers, in layer order.
    pub fn params_mut(&mut self) -> Vec<Param<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Collects shared parameter views from all layers, in the same order
    /// as [`Sequential::params_mut`].
    pub fn params(&self) -> Vec<&Matrix> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Collects shared buffer views (e.g. batch-norm running statistics)
    /// from all layers, in layer order.
    pub fn buffers(&self) -> Vec<&[f64]> {
        self.layers.iter().flat_map(|l| l.buffers()).collect()
    }

    /// Collects mutable buffer views from all layers, in the same order as
    /// [`Sequential::buffers`].
    pub fn buffers_mut(&mut self) -> Vec<&mut Vec<f64>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.buffers_mut())
            .collect()
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.len())
            .field("params", &self.num_params())
            .finish()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        Sequential::forward(self, input, train)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        Sequential::backward(self, grad_output)
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        Sequential::infer(self, input)
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        Sequential::params_mut(self)
    }

    fn params(&self) -> Vec<&Matrix> {
        Sequential::params(self)
    }

    fn buffers(&self) -> Vec<&[f64]> {
        Sequential::buffers(self)
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f64>> {
        Sequential::buffers_mut(self)
    }

    fn zero_grad(&mut self) {
        Sequential::zero_grad(self)
    }

    fn num_params(&self) -> usize {
        Sequential::num_params(self)
    }

    fn plan_op(&self) -> PlanOp {
        PlanOp::Nested(self.layers.iter().map(|l| l.plan_op()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Dense};
    use fsda_linalg::SeededRng;

    fn two_layer(rng: &mut SeededRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, rng));
        net.push(Activation::tanh());
        net.push(Dense::new(5, 2, rng));
        net
    }

    #[test]
    fn forward_shapes() {
        let mut rng = SeededRng::new(1);
        let mut net = two_layer(&mut rng);
        let out = net.forward(&Matrix::zeros(7, 3), true);
        assert_eq!(out.shape(), (7, 2));
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }

    #[test]
    fn input_gradient_matches_finite_diff() {
        let mut rng = SeededRng::new(2);
        let mut net = two_layer(&mut rng);
        let x = Matrix::from_fn(2, 3, |i, j| 0.1 * (i as f64 + 1.0) * (j as f64 - 1.0));
        let out = net.forward(&x, false);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let analytic = net.backward(&ones);
        let eps = 1e-5;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut plus = x.clone();
                plus.set(i, j, x.get(i, j) + eps);
                let mut minus = x.clone();
                minus.set(i, j, x.get(i, j) - eps);
                let fp: f64 = net.forward(&plus, false).as_slice().iter().sum();
                let fm: f64 = net.forward(&minus, false).as_slice().iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (analytic.get(i, j) - numeric).abs() < 1e-5,
                    "grad mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn params_are_collected_in_order() {
        let mut rng = SeededRng::new(3);
        let mut net = two_layer(&mut rng);
        let params = net.params_mut();
        // Dense(3->5): W + b, Dense(5->2): W + b.
        assert_eq!(params.len(), 4);
        assert_eq!(params[0].value.shape(), (5, 3));
        assert_eq!(params[3].value.shape(), (1, 2));
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut rng = SeededRng::new(4);
        let mut net = two_layer(&mut rng);
        let x = Matrix::filled(2, 3, 1.0);
        let out = net.forward(&x, true);
        net.backward(&Matrix::filled(out.rows(), out.cols(), 1.0));
        let nonzero = net.params_mut().iter().any(|p| p.grad.max_abs() > 0.0);
        assert!(nonzero);
        net.zero_grad();
        for p in net.params_mut() {
            assert_eq!(p.grad.max_abs(), 0.0);
        }
    }

    #[test]
    fn num_params_sums_layers() {
        let mut rng = SeededRng::new(5);
        let net = {
            let mut n = Sequential::new();
            n.push(Dense::new(3, 5, &mut rng));
            n.push(Dense::new(5, 2, &mut rng));
            n
        };
        assert_eq!(net.num_params(), (3 * 5 + 5) + (5 * 2 + 2));
    }

    #[test]
    fn debug_mentions_layer_count() {
        let net = Sequential::new();
        assert!(format!("{net:?}").contains("layers"));
    }
}
