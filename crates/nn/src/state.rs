//! Weight export/import ("state dict") for networks.
//!
//! The paper's operational pitch is *train once, never retrain*: the
//! network-management model's weights are produced once from source data
//! and shipped unchanged. This module gives [`Sequential`]-based models a
//! stable way to extract and restore those weights without serializing the
//! layer objects themselves (layers are trait objects).
//!
//! A state dict carries two kinds of state: *parameters* (tensors the
//! optimizer updates — dense weights, batch-norm affine terms) and
//! *buffers* (non-parameter state inference depends on — batch-norm
//! running mean/variance). Dropping the buffers would make a reloaded
//! network evaluate with freshly-initialized statistics, silently changing
//! its predictions; both are captured.

use crate::{Param, Sequential};
use fsda_linalg::Matrix;

/// A snapshot of every parameter tensor and buffer of a network, in layer
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDict {
    tensors: Vec<Matrix>,
    buffers: Vec<Matrix>,
}

impl StateDict {
    /// Rebuilds a state dict from raw parts (e.g. decoded from disk).
    /// Buffers are stored as `1 × n` matrices.
    pub fn from_parts(tensors: Vec<Matrix>, buffers: Vec<Matrix>) -> Self {
        StateDict { tensors, buffers }
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when the snapshot holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// The tensors, in the order [`export_state`] produced them.
    pub fn tensors(&self) -> &[Matrix] {
        &self.tensors
    }

    /// The buffers (e.g. batch-norm running statistics) as `1 × n`
    /// matrices, in the order [`export_state`] produced them.
    pub fn buffers(&self) -> &[Matrix] {
        &self.buffers
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.tensors.iter().map(|t| t.rows() * t.cols()).sum()
    }
}

/// Extracts a copy of every parameter and buffer of `net`, in stable layer
/// order.
pub fn export_state(net: &Sequential) -> StateDict {
    StateDict {
        tensors: net.params().iter().map(|p| (*p).clone()).collect(),
        buffers: net
            .buffers()
            .iter()
            .map(|b| Matrix::from_vec(1, b.len(), b.to_vec()))
            .collect(),
    }
}

/// Restores previously exported parameters and buffers into `net`.
///
/// # Errors
///
/// Returns a descriptive error string when the tensor/buffer count or any
/// shape does not match the network architecture — loading weights into the
/// wrong architecture is always a bug worth failing loudly on.
pub fn load_state(net: &mut Sequential, state: &StateDict) -> Result<(), String> {
    {
        let mut params: Vec<Param<'_>> = net.params_mut();
        if params.len() != state.tensors.len() {
            return Err(format!(
                "state dict has {} tensors but the network has {} parameters",
                state.tensors.len(),
                params.len()
            ));
        }
        for (i, (param, tensor)) in params.iter_mut().zip(&state.tensors).enumerate() {
            if param.value.shape() != tensor.shape() {
                return Err(format!(
                    "tensor {i}: shape {:?} does not match parameter shape {:?}",
                    tensor.shape(),
                    param.value.shape()
                ));
            }
        }
        for (param, tensor) in params.iter_mut().zip(&state.tensors) {
            *param.value = tensor.clone();
        }
    }
    let mut buffers = net.buffers_mut();
    if buffers.len() != state.buffers.len() {
        return Err(format!(
            "state dict has {} buffers but the network has {}",
            state.buffers.len(),
            buffers.len()
        ));
    }
    for (i, (dst, src)) in buffers.iter_mut().zip(&state.buffers).enumerate() {
        if dst.len() != src.cols() {
            return Err(format!(
                "buffer {i}: length {} does not match network buffer length {}",
                src.cols(),
                dst.len()
            ));
        }
    }
    for (dst, src) in buffers.iter_mut().zip(&state.buffers) {
        dst.copy_from_slice(src.as_slice());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Dense};
    use crate::loss::mse;
    use crate::norm::BatchNorm1d;
    use crate::optim::{Adam, Optimizer};
    use fsda_linalg::SeededRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(3, 8, &mut rng));
        n.push(Activation::relu());
        n.push(Dense::new(8, 2, &mut rng));
        n
    }

    fn bn_net(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(3, 8, &mut rng));
        n.push(BatchNorm1d::new(8));
        n.push(Activation::relu());
        n.push(Dense::new(8, 2, &mut rng));
        n
    }

    #[test]
    fn export_load_round_trip() {
        let a = net(1);
        let x = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 * 0.2);
        let before = a.infer(&x);
        let state = export_state(&a);
        assert_eq!(state.len(), 4);
        assert_eq!(state.num_params(), (3 * 8 + 8) + (8 * 2 + 2));
        assert!(state.buffers().is_empty());

        // A differently-initialized network with the same architecture
        // produces the same outputs after loading.
        let mut b = net(999);
        assert_ne!(b.infer(&x), before);
        load_state(&mut b, &state).unwrap();
        assert_eq!(b.infer(&x), before);
    }

    #[test]
    fn trained_weights_survive_transfer() {
        // Train a on a toy regression, ship weights to b, same predictions.
        let mut a = net(2);
        let x = Matrix::from_fn(16, 3, |i, j| ((i * 3 + j) % 7) as f64 * 0.3 - 1.0);
        let y = Matrix::from_fn(16, 2, |i, _| (i % 2) as f64);
        let mut opt = Adam::new(1e-2);
        for _ in 0..100 {
            let pred = a.forward(&x, true);
            let (_, grad) = mse(&pred, &y);
            a.zero_grad();
            a.backward(&grad);
            opt.step(&mut a.params_mut());
        }
        let state = export_state(&a);
        let mut b = net(3);
        load_state(&mut b, &state).unwrap();
        assert_eq!(a.infer(&x), b.infer(&x));
    }

    #[test]
    fn batchnorm_running_stats_survive_transfer() {
        // Run training batches through a BN network so its running
        // statistics move away from the (0, 1) init, then transfer to a
        // fresh network: eval outputs must be bit-identical, which can
        // only happen if the buffers were carried along with the weights.
        let mut a = bn_net(10);
        let x = Matrix::from_fn(12, 3, |i, j| ((i * 5 + j * 3) % 11) as f64 * 0.4 - 2.0);
        for _ in 0..20 {
            a.forward(&x, true);
        }
        let state = export_state(&a);
        assert_eq!(state.buffers().len(), 2, "running mean + running var");

        let mut b = bn_net(77);
        assert_ne!(b.infer(&x), a.infer(&x));
        load_state(&mut b, &state).unwrap();
        assert_eq!(b.infer(&x), a.infer(&x));
    }

    #[test]
    fn rejects_wrong_architecture() {
        let a = net(4);
        let state = export_state(&a);
        // Too few layers.
        let mut small = Sequential::new();
        let mut rng = SeededRng::new(5);
        small.push(Dense::new(3, 2, &mut rng));
        let err = load_state(&mut small, &state).unwrap_err();
        assert!(err.contains("tensors"));
        // Right count, wrong shapes.
        let mut wrong = Sequential::new();
        let mut rng = SeededRng::new(6);
        wrong.push(Dense::new(3, 9, &mut rng));
        wrong.push(Activation::relu());
        wrong.push(Dense::new(9, 2, &mut rng));
        let err = load_state(&mut wrong, &state).unwrap_err();
        assert!(err.contains("shape"));
    }

    #[test]
    fn rejects_buffer_mismatch() {
        let a = bn_net(8);
        let state = export_state(&a);
        // Same parameter shapes but no batch-norm layer: buffer count 0.
        let mut rng = SeededRng::new(9);
        let mut no_bn = Sequential::new();
        no_bn.push(Dense::new(3, 8, &mut rng));
        // Stand-ins for BN's gamma/beta so the tensor check passes.
        no_bn.push(Dense::new(8, 8, &mut rng));
        let err = load_state(&mut no_bn, &state);
        assert!(err.is_err());
    }

    #[test]
    fn from_parts_round_trips() {
        let a = bn_net(11);
        let state = export_state(&a);
        let rebuilt = StateDict::from_parts(state.tensors().to_vec(), state.buffers().to_vec());
        assert_eq!(rebuilt, state);
    }
}
