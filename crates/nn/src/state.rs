//! Weight export/import ("state dict") for networks.
//!
//! The paper's operational pitch is *train once, never retrain*: the
//! network-management model's weights are produced once from source data
//! and shipped unchanged. This module gives [`Sequential`]-based models a
//! stable way to extract and restore those weights without serializing the
//! layer objects themselves (layers are trait objects).

use crate::{Param, Sequential};
use fsda_linalg::Matrix;

/// A snapshot of every parameter tensor of a network, in layer order.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDict {
    tensors: Vec<Matrix>,
}

impl StateDict {
    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when the snapshot holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// The tensors, in the order [`export_state`] produced them.
    pub fn tensors(&self) -> &[Matrix] {
        &self.tensors
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.tensors.iter().map(|t| t.rows() * t.cols()).sum()
    }
}

/// Extracts a copy of every parameter of `net`, in stable layer order.
pub fn export_state(net: &mut Sequential) -> StateDict {
    StateDict {
        tensors: net.params_mut().iter().map(|p| p.value.clone()).collect(),
    }
}

/// Restores previously exported parameters into `net`.
///
/// # Errors
///
/// Returns a descriptive error string when the tensor count or any shape
/// does not match the network architecture — loading weights into the
/// wrong architecture is always a bug worth failing loudly on.
pub fn load_state(net: &mut Sequential, state: &StateDict) -> Result<(), String> {
    let mut params: Vec<Param<'_>> = net.params_mut();
    if params.len() != state.tensors.len() {
        return Err(format!(
            "state dict has {} tensors but the network has {} parameters",
            state.tensors.len(),
            params.len()
        ));
    }
    for (i, (param, tensor)) in params.iter_mut().zip(&state.tensors).enumerate() {
        if param.value.shape() != tensor.shape() {
            return Err(format!(
                "tensor {i}: shape {:?} does not match parameter shape {:?}",
                tensor.shape(),
                param.value.shape()
            ));
        }
    }
    for (param, tensor) in params.iter_mut().zip(&state.tensors) {
        *param.value = tensor.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Dense};
    use crate::loss::mse;
    use crate::optim::{Adam, Optimizer};
    use fsda_linalg::SeededRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(3, 8, &mut rng));
        n.push(Activation::relu());
        n.push(Dense::new(8, 2, &mut rng));
        n
    }

    #[test]
    fn export_load_round_trip() {
        let mut a = net(1);
        let x = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 * 0.2);
        let before = a.infer(&x);
        let state = export_state(&mut a);
        assert_eq!(state.len(), 4);
        assert_eq!(state.num_params(), (3 * 8 + 8) + (8 * 2 + 2));

        // A differently-initialized network with the same architecture
        // produces the same outputs after loading.
        let mut b = net(999);
        assert_ne!(b.infer(&x), before);
        load_state(&mut b, &state).unwrap();
        assert_eq!(b.infer(&x), before);
    }

    #[test]
    fn trained_weights_survive_transfer() {
        // Train a on a toy regression, ship weights to b, same predictions.
        let mut a = net(2);
        let x = Matrix::from_fn(16, 3, |i, j| ((i * 3 + j) % 7) as f64 * 0.3 - 1.0);
        let y = Matrix::from_fn(16, 2, |i, _| (i % 2) as f64);
        let mut opt = Adam::new(1e-2);
        for _ in 0..100 {
            let pred = a.forward(&x, true);
            let (_, grad) = mse(&pred, &y);
            a.zero_grad();
            a.backward(&grad);
            opt.step(&mut a.params_mut());
        }
        let state = export_state(&mut a);
        let mut b = net(3);
        load_state(&mut b, &state).unwrap();
        assert_eq!(a.infer(&x), b.infer(&x));
    }

    #[test]
    fn rejects_wrong_architecture() {
        let mut a = net(4);
        let state = export_state(&mut a);
        // Too few layers.
        let mut small = Sequential::new();
        let mut rng = SeededRng::new(5);
        small.push(Dense::new(3, 2, &mut rng));
        let err = load_state(&mut small, &state).unwrap_err();
        assert!(err.contains("tensors"));
        // Right count, wrong shapes.
        let mut wrong = Sequential::new();
        let mut rng = SeededRng::new(6);
        wrong.push(Dense::new(3, 9, &mut rng));
        wrong.push(Activation::relu());
        wrong.push(Dense::new(9, 2, &mut rng));
        let err = load_state(&mut wrong, &state).unwrap_err();
        assert!(err.contains("shape"));
    }
}
