//! Mini-batch iteration helpers shared by every trained model in the
//! workspace.

use fsda_linalg::{Matrix, SeededRng};

/// Yields shuffled mini-batches of row indices, epoch by epoch.
///
/// # Example
///
/// ```
/// use fsda_linalg::SeededRng;
/// use fsda_nn::train::BatchIter;
///
/// let mut rng = SeededRng::new(0);
/// let batches: Vec<Vec<usize>> = BatchIter::new(10, 4, &mut rng).collect();
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2
/// let total: usize = batches.iter().map(Vec::len).sum();
/// assert_eq!(total, 10);
/// ```
#[derive(Debug)]
pub struct BatchIter {
    order: Vec<usize>,
    batch_size: usize,
    pos: usize,
}

impl BatchIter {
    /// Creates a single-epoch iterator over `n` samples in batches of
    /// `batch_size` (the final batch may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, rng: &mut SeededRng) -> Self {
        assert!(batch_size > 0, "BatchIter: batch_size must be positive");
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        BatchIter {
            order,
            batch_size,
            pos: 0,
        }
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let batch = self.order[self.pos..end].to_vec();
        self.pos = end;
        Some(batch)
    }
}

/// Training hyper-parameters shared by the NN-based models.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    /// RNG seed for shuffling and initialization.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 64,
            learning_rate: 1e-3,
            weight_decay: 0.0,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// Builder-style override of `epochs`.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style override of `batch_size`.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder-style override of `learning_rate`.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Builder-style override of `seed`.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Gathers the rows at `indices` from `x` and the corresponding `labels`.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_batch(x: &Matrix, labels: &[usize], indices: &[usize]) -> (Matrix, Vec<usize>) {
    let bx = x.select_rows(indices);
    let by = indices.iter().map(|&i| labels[i]).collect();
    (bx, by)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_indices_once() {
        let mut rng = SeededRng::new(1);
        let mut seen: Vec<usize> = BatchIter::new(23, 5, &mut rng).flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn batches_are_shuffled() {
        let mut rng = SeededRng::new(2);
        let flat: Vec<usize> = BatchIter::new(100, 100, &mut rng).flatten().collect();
        assert_ne!(flat, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_dataset_yields_nothing() {
        let mut rng = SeededRng::new(3);
        assert_eq!(BatchIter::new(0, 4, &mut rng).count(), 0);
    }

    #[test]
    fn gather_batch_selects_rows_and_labels() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let labels = vec![10, 11, 12];
        let (bx, by) = gather_batch(&x, &labels, &[2, 0]);
        assert_eq!(bx.row(0), &[2.0]);
        assert_eq!(by, vec![12, 10]);
    }

    #[test]
    fn config_builder() {
        let c = TrainConfig::default()
            .with_epochs(5)
            .with_batch_size(16)
            .with_seed(9);
        assert_eq!(c.epochs, 5);
        assert_eq!(c.batch_size, 16);
        assert_eq!(c.seed, 9);
    }
}
