//! Divergence watchdog for iterative training loops.
//!
//! Adversarial objectives (the conditional GAN) and even plain
//! reconstruction losses can blow up — a bad batch, an oversized learning
//! rate, or corrupt input pushes the loss to NaN/Inf and every parameter
//! update after that is garbage. The watchdog snapshots the networks after
//! each finite epoch; when it observes a non-finite loss it rolls the
//! networks back to the last finite state (up to a bounded number of
//! times), and when rollbacks are exhausted it tells the loop to abort.
//! The final [`TrainOutcome`] is surfaced through the adapter layer so a
//! diverged reconstructor shows up in experiment reports instead of
//! silently producing NaN features.
//!
//! The watchdog is numerically inert on healthy runs: snapshots are plain
//! copies and no update is altered unless the loss already went non-finite
//! (gradient clipping is separate and opt-in, see
//! [`crate::optim::clip_grad_norm`]).

use crate::state::{export_state, load_state, StateDict};
use crate::Sequential;

/// How a guarded training run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainOutcome {
    /// Every epoch finished with a finite loss.
    Converged,
    /// The loss went non-finite at least once but training recovered from a
    /// rollback and finished with usable weights.
    Recovered {
        /// Number of rollbacks that were needed.
        rollbacks: usize,
    },
    /// Rollbacks were exhausted; the networks hold the last finite
    /// snapshot, but training never got past the instability.
    Diverged {
        /// Epoch (0-based) at which training gave up.
        epoch: usize,
    },
}

impl TrainOutcome {
    /// True unless the run ended in [`TrainOutcome::Diverged`].
    pub fn is_usable(&self) -> bool {
        !matches!(self, TrainOutcome::Diverged { .. })
    }
}

impl std::fmt::Display for TrainOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainOutcome::Converged => write!(f, "converged"),
            TrainOutcome::Recovered { rollbacks } => {
                write!(f, "recovered after {rollbacks} rollback(s)")
            }
            TrainOutcome::Diverged { epoch } => write!(f, "diverged at epoch {epoch}"),
        }
    }
}

/// Watchdog policy knobs. The default is active divergence detection with
/// no gradient clipping — exactly reproducing unguarded training on healthy
/// runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Master switch; disabled means [`DivergenceWatchdog::observe`] always
    /// proceeds and the outcome is always `Converged`.
    pub enabled: bool,
    /// Optional global-norm gradient clip applied by the fit loops via
    /// [`crate::optim::clip_grad_norm`]. `None` (default) leaves gradients
    /// untouched, keeping guarded and unguarded training bit-identical.
    pub grad_clip: Option<f64>,
    /// Rollbacks allowed before the watchdog aborts the run.
    pub max_rollbacks: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            grad_clip: None,
            max_rollbacks: 2,
        }
    }
}

/// What the training loop should do after reporting an epoch loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// Loss was finite (or the watchdog is disabled); keep going.
    Proceed,
    /// Loss was non-finite; the networks were restored to the last finite
    /// snapshot. Continue training from there.
    RolledBack,
    /// Rollbacks exhausted (or no finite snapshot exists); stop training.
    Abort,
}

/// Tracks per-epoch losses, snapshots known-good weights, and restores them
/// on divergence. One watchdog guards all networks of a training loop
/// (e.g. generator + discriminator) so they roll back together.
#[derive(Debug)]
pub struct DivergenceWatchdog {
    config: WatchdogConfig,
    snapshots: Option<Vec<StateDict>>,
    rollbacks: usize,
    diverged_at: Option<usize>,
}

impl DivergenceWatchdog {
    /// Creates a watchdog with the given policy.
    pub fn new(config: WatchdogConfig) -> Self {
        DivergenceWatchdog {
            config,
            snapshots: None,
            rollbacks: 0,
            diverged_at: None,
        }
    }

    /// Reports the end of an epoch. `loss` is the epoch's (summed or mean)
    /// objective; `nets` are every network the loop trains, in a stable
    /// order. On a finite loss the networks are snapshotted; on a
    /// non-finite loss they are rolled back to the last snapshot, or the
    /// run is aborted when the rollback budget is spent (or no finite
    /// epoch ever completed).
    ///
    /// Optimizer state (Adam moments) is *not* rolled back — after a
    /// rollback the optimizer re-adapts from the restored weights, which is
    /// sufficient for the small networks this workspace trains.
    pub fn observe(
        &mut self,
        epoch: usize,
        loss: f64,
        nets: &mut [&mut Sequential],
    ) -> WatchdogVerdict {
        // Per-epoch training telemetry: observe() is the one place every
        // guarded fit loop reports each epoch, so the counters live here
        // rather than in each loop.
        fsda_telemetry::counter("nn.train.epochs", 1);
        fsda_telemetry::gauge("nn.train.epoch_loss", loss);
        if !self.config.enabled {
            return WatchdogVerdict::Proceed;
        }
        if loss.is_finite() {
            self.snapshots = Some(nets.iter().map(|n| export_state(n)).collect());
            return WatchdogVerdict::Proceed;
        }
        let restorable = match &self.snapshots {
            Some(snaps) if self.rollbacks < self.config.max_rollbacks => {
                let mut ok = true;
                for (net, snap) in nets.iter_mut().zip(snaps) {
                    if load_state(net, snap).is_err() {
                        ok = false;
                        break;
                    }
                }
                ok
            }
            _ => false,
        };
        if restorable {
            self.rollbacks += 1;
            fsda_telemetry::counter("nn.watchdog.rollbacks", 1);
            fsda_telemetry::event(
                "nn.watchdog.rollback",
                &[
                    ("epoch", fsda_telemetry::Value::from(epoch)),
                    ("loss", fsda_telemetry::Value::from(loss)),
                    ("rollbacks", fsda_telemetry::Value::from(self.rollbacks)),
                ],
            );
            WatchdogVerdict::RolledBack
        } else {
            // Even on abort, leave the networks holding the last finite
            // snapshot (when one exists) rather than the diverged weights.
            if let Some(snaps) = &self.snapshots {
                for (net, snap) in nets.iter_mut().zip(snaps) {
                    let _ = load_state(net, snap);
                }
            }
            self.diverged_at = Some(epoch);
            fsda_telemetry::counter("nn.watchdog.aborts", 1);
            fsda_telemetry::event(
                "nn.watchdog.abort",
                &[
                    ("epoch", fsda_telemetry::Value::from(epoch)),
                    ("loss", fsda_telemetry::Value::from(loss)),
                ],
            );
            WatchdogVerdict::Abort
        }
    }

    /// How the guarded run ended, given everything observed so far.
    pub fn outcome(&self) -> TrainOutcome {
        match (self.diverged_at, self.rollbacks) {
            (Some(epoch), _) => TrainOutcome::Diverged { epoch },
            (None, 0) => TrainOutcome::Converged,
            (None, rollbacks) => TrainOutcome::Recovered { rollbacks },
        }
    }

    /// Number of rollbacks performed so far.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::layer::Dense;
    use fsda_linalg::SeededRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(2, 3, &mut rng));
        n
    }

    fn weights(n: &Sequential) -> Vec<f64> {
        export_state(n)
            .tensors()
            .iter()
            .flat_map(|t| t.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn healthy_run_converges() {
        let mut n = net(1);
        let mut w = DivergenceWatchdog::new(WatchdogConfig::default());
        for e in 0..5 {
            assert_eq!(
                w.observe(e, 1.0 / (e + 1) as f64, &mut [&mut n]),
                WatchdogVerdict::Proceed
            );
        }
        assert_eq!(w.outcome(), TrainOutcome::Converged);
        assert!(w.outcome().is_usable());
    }

    #[test]
    fn non_finite_loss_rolls_back_weights() {
        let mut n = net(2);
        let mut w = DivergenceWatchdog::new(WatchdogConfig::default());
        w.observe(0, 0.5, &mut [&mut n]);
        let good = weights(&n);
        // Corrupt the weights as a diverging step would.
        for p in n.params_mut() {
            p.value.map_inplace(|_| f64::NAN);
        }
        assert_eq!(
            w.observe(1, f64::NAN, &mut [&mut n]),
            WatchdogVerdict::RolledBack
        );
        assert_eq!(weights(&n), good);
        assert_eq!(w.outcome(), TrainOutcome::Recovered { rollbacks: 1 });
    }

    #[test]
    fn rollback_budget_exhaustion_aborts() {
        let mut n = net(3);
        let mut w = DivergenceWatchdog::new(WatchdogConfig {
            max_rollbacks: 1,
            ..WatchdogConfig::default()
        });
        w.observe(0, 0.5, &mut [&mut n]);
        assert_eq!(
            w.observe(1, f64::INFINITY, &mut [&mut n]),
            WatchdogVerdict::RolledBack
        );
        assert_eq!(
            w.observe(2, f64::NAN, &mut [&mut n]),
            WatchdogVerdict::Abort
        );
        let out = w.outcome();
        assert_eq!(out, TrainOutcome::Diverged { epoch: 2 });
        assert!(!out.is_usable());
    }

    #[test]
    fn divergence_before_any_snapshot_aborts() {
        let mut n = net(4);
        let mut w = DivergenceWatchdog::new(WatchdogConfig::default());
        assert_eq!(
            w.observe(0, f64::NAN, &mut [&mut n]),
            WatchdogVerdict::Abort
        );
        assert_eq!(w.outcome(), TrainOutcome::Diverged { epoch: 0 });
    }

    #[test]
    fn disabled_watchdog_is_inert() {
        let mut n = net(5);
        let mut w = DivergenceWatchdog::new(WatchdogConfig {
            enabled: false,
            ..WatchdogConfig::default()
        });
        assert_eq!(
            w.observe(0, f64::NAN, &mut [&mut n]),
            WatchdogVerdict::Proceed
        );
        assert_eq!(w.outcome(), TrainOutcome::Converged);
    }

    #[test]
    fn outcome_display() {
        assert_eq!(TrainOutcome::Converged.to_string(), "converged");
        assert!(TrainOutcome::Recovered { rollbacks: 2 }
            .to_string()
            .contains('2'));
        assert!(TrainOutcome::Diverged { epoch: 7 }
            .to_string()
            .contains('7'));
    }
}
