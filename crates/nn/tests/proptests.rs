//! Property-based tests for the NN substrate: gradient correctness against
//! finite differences for randomized architectures and inputs, plus loss
//! invariants.

use fsda_linalg::{Matrix, SeededRng};
use fsda_nn::layer::{Activation, ActivationKind, Dense};
use fsda_nn::loss::{bce_with_logits, cross_entropy, mse, softmax};
use fsda_nn::Sequential;
use proptest::prelude::*;

fn finite_diff_input_grad(net: &mut Sequential, x: &Matrix, tol: f64) -> Result<(), TestCaseError> {
    let out = net.forward(x, false);
    let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
    let analytic = net.backward(&ones);
    let eps = 1e-5;
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            let mut plus = x.clone();
            plus.set(i, j, x.get(i, j) + eps);
            let mut minus = x.clone();
            minus.set(i, j, x.get(i, j) - eps);
            let fp: f64 = net.forward(&plus, false).as_slice().iter().sum();
            let fm: f64 = net.forward(&minus, false).as_slice().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            prop_assert!(
                (analytic.get(i, j) - numeric).abs() < tol,
                "grad mismatch at ({}, {}): {} vs {}",
                i,
                j,
                analytic.get(i, j),
                numeric
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_mlp_gradients_match_finite_diff(
        seed in 0u64..500,
        in_dim in 1usize..5,
        hidden in 1usize..6,
        act in 0usize..3,
    ) {
        let mut rng = SeededRng::new(seed);
        let kind = [ActivationKind::Tanh, ActivationKind::Sigmoid, ActivationKind::LeakyRelu][act];
        let mut net = Sequential::new();
        net.push(Dense::new(in_dim, hidden, &mut rng));
        net.push(Activation::new(kind));
        net.push(Dense::new(hidden, 2, &mut rng));
        let x = rng.normal_matrix(2, in_dim, 0.0, 1.0);
        finite_diff_input_grad(&mut net, &x, 1e-4)?;
    }

    #[test]
    fn softmax_rows_are_distributions(seed in 0u64..1000, n in 1usize..6, k in 2usize..6) {
        let mut rng = SeededRng::new(seed);
        let z = rng.normal_matrix(n, k, 0.0, 3.0);
        let p = softmax(&z);
        for r in 0..n {
            let s: f64 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_invariant_to_row_shift(seed in 0u64..1000, shift in -50.0f64..50.0) {
        let mut rng = SeededRng::new(seed);
        let z = rng.normal_matrix(1, 4, 0.0, 1.0);
        let shifted = z.map(|v| v + shift);
        let a = softmax(&z);
        let b = softmax(&shifted);
        prop_assert!(a.try_sub(&b).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn cross_entropy_nonnegative_and_grad_sums_zero(seed in 0u64..1000, n in 1usize..5, k in 2usize..5) {
        let mut rng = SeededRng::new(seed);
        let z = rng.normal_matrix(n, k, 0.0, 2.0);
        let labels: Vec<usize> = (0..n).map(|_| rng.index(k)).collect();
        let (loss, grad) = cross_entropy(&z, &labels);
        prop_assert!(loss >= 0.0);
        // Each row's gradient sums to zero (softmax minus one-hot).
        for r in 0..n {
            let s: f64 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-9, "row gradient must sum to 0, got {s}");
        }
    }

    #[test]
    fn bce_loss_nonnegative_and_stable(seed in 0u64..1000, scale in 0.1f64..500.0) {
        let mut rng = SeededRng::new(seed);
        let z = rng.normal_matrix(3, 2, 0.0, scale);
        let t = Matrix::from_fn(3, 2, |_, _| f64::from(rng.bernoulli(0.5)));
        let (loss, grad) = bce_with_logits(&z, &t);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        prop_assert!(grad.is_finite());
    }

    #[test]
    fn mse_zero_iff_equal(seed in 0u64..1000, n in 1usize..6) {
        let mut rng = SeededRng::new(seed);
        let a = rng.normal_matrix(n, 3, 0.0, 1.0);
        let (loss, _) = mse(&a, &a);
        prop_assert_eq!(loss, 0.0);
        let b = a.map(|v| v + 1.0);
        let (loss2, _) = mse(&a, &b);
        prop_assert!((loss2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_infer_matches_eval_forward(seed in 0u64..500, n in 1usize..5) {
        let mut rng = SeededRng::new(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 4, &mut rng));
        net.push(Activation::relu());
        net.push(Dense::new(4, 2, &mut rng));
        let x = rng.normal_matrix(n, 3, 0.0, 1.0);
        let a = net.forward(&x, false);
        let b = net.infer(&x);
        prop_assert!(a.try_sub(&b).unwrap().max_abs() < 1e-12);
    }
}
