//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The `fsda` workspace must build and test on machines with **no network
//! access to crates.io** (vendored CI runners, air-gapped operator
//! machines), so it carries no registry dependencies. Its property-based
//! test suites, however, were written against proptest's macros. This crate
//! reimplements exactly the slice of the proptest 1.x API those suites use,
//! on top of a self-contained deterministic PRNG:
//!
//! * the [`proptest!`] macro with `ident in strategy` bindings and an
//!   optional `#![proptest_config(...)]` attribute,
//! * range strategies (`2usize..10`, `0u64..1000`, `-1.0f64..1.0`, …),
//! * [`ProptestConfig::with_cases`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! seeds: inputs are drawn from a per-test deterministic stream (seeded by
//! the test's name), so failures reproduce across runs and machines. That
//! trade-off keeps the workspace dependency-free while preserving the
//! randomized coverage of the original suites.

use std::fmt;

/// Execution parameters for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The input violated a [`prop_assume!`] precondition; the case is
    /// skipped without counting against the budget.
    Reject,
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Constructs a rejection (assume violated).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }

    /// True for [`TestCaseError::Reject`].
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Deterministic input stream for one property test (SplitMix64).
///
/// Seeded from the test's name so that every test draws an independent,
/// machine-stable sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the stream for the named test (FNV-1a over the name).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Unbiased-enough uniform integer in `[0, n)` via widening multiply.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below: empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Value generation for [`proptest!`] bindings.
pub mod strategy {
    use super::TestRng;

    /// A source of random values of one type — the subset of proptest's
    /// `Strategy` needed by range expressions.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    self.start + (self.end - self.start) * rng.unit() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f64, f32);
}

pub use strategy::Strategy;

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { ... }`
/// item becomes a `#[test]` that runs the body over `cases` sampled inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// // In a test module the item would carry `#[test]`; here we call it.
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            // The attempt cap bounds pathological prop_assume! rejection
            // rates instead of hanging the suite.
            while accepted < config.cases && attempts < config.cases.saturating_mul(16).max(64) {
                attempts += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err(e) if e.is_rejection() => continue,
                    Err(e) => panic!("proptest case {} failed: {}", accepted + 1, e),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds. Must be used inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case (without counting it) unless the precondition
/// holds. Must be used inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn int_ranges_respect_bounds(n in 3usize..17, s in -5i32..5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-5..5).contains(&s));
        }

        #[test]
        fn float_ranges_respect_bounds(x in -2.0f64..3.5) {
            prop_assert!((-2.0..3.5).contains(&x), "x = {x}");
        }

        #[test]
        fn assume_skips_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn eq_and_formatting(a in 0u64..100) {
            prop_assert_eq!(a + 1, 1 + a, "commutativity broke at {}", a);
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("stream");
        let mut b = crate::TestRng::deterministic("stream");
        let mut c = crate::TestRng::deterministic("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_message() {
        proptest! {
            fn always_fails(x in 0usize..2) {
                prop_assert!(x > 10, "x was {x}");
            }
        }
        always_fails();
    }
}
