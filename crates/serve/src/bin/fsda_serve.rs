//! `fsda_serve` — the multi-tenant drift-mitigation serving binary.
//!
//! Two modes:
//!
//! - **Manifest mode** (`--manifest <path>`): boots every tenant listed in
//!   the manifest (see `docs/SERVING.md` for the format), drives the
//!   requested traffic through the guarded serving path, and hot-swaps
//!   each tenant's artifact from its (possibly re-written) file
//!   `--swaps` times along the way.
//! - **Demo mode** (default): self-contained — fits one pipeline per demo
//!   tenant on the 5GC SCM generator, persists the artifacts plus a
//!   manifest to a temp directory, then boots from that manifest exactly
//!   as an operator deployment would. Swaps use freshly re-fitted
//!   artifacts, mimicking the drift → re-fit → swap loop.
//!
//! Either way the run ends with per-tenant serving stats and the full
//! telemetry snapshot a dashboard would scrape.
//!
//! ```text
//! fsda_serve [--manifest PATH] [--tenants N] [--batches N] [--rows N]
//!            [--swaps N] [--shards N]
//! ```

use fsda_core::adapter::AdapterConfig;
use fsda_core::pipeline::DriftMitigator;
use fsda_core::{telemetry, InputPolicy, Method};
use fsda_data::fewshot::few_shot_subset;
use fsda_data::synth5gc::Synth5gc;
use fsda_linalg::{Matrix, SeededRng};
use fsda_serve::manifest::TenantManifest;
use fsda_serve::server::{RequestError, ServeConfig, TenantServer};
use fsda_telemetry::InMemoryRecorder;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    manifest: Option<PathBuf>,
    tenants: usize,
    batches: usize,
    rows: usize,
    swaps: usize,
    shards: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        manifest: None,
        tenants: 3,
        batches: 24,
        rows: 64,
        swaps: 2,
        shards: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--manifest" => args.manifest = Some(PathBuf::from(value("--manifest")?)),
            "--tenants" => {
                args.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?
            }
            "--rows" => {
                args.rows = value("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--swaps" => {
                args.swaps = value("--swaps")?
                    .parse()
                    .map_err(|e| format!("--swaps: {e}"))?
            }
            "--shards" => {
                args.shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "fsda_serve [--manifest PATH] [--tenants N] [--batches N] \
                     [--rows N] [--swaps N] [--shards N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Fits one quick FS pipeline for a demo tenant. Each tenant gets its own
/// few-shot draw and seed, standing in for per-slice drift.
fn fit_demo_artifact(
    bundle: &fsda_data::synth5gc::Synth5gcBundle,
    seed: u64,
) -> Result<Box<dyn DriftMitigator>, Box<dyn std::error::Error>> {
    let mut rng = SeededRng::new(seed);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng)?;
    let mut m = Method::Fs.build(&AdapterConfig::quick(), seed);
    m.fit(&bundle.source_train, &shots)?;
    Ok(m)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("{e} (try --help)"))?;
    println!("== fsda_serve: multi-tenant drift-mitigation server ==\n");

    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());

    // The demo's traffic source; manifest mode also uses it as a load
    // generator against operator-provided artifacts (5GC feature width).
    let bundle = Synth5gc::small().generate(42)?;

    let mut demo_dir: Option<PathBuf> = None;
    let manifest = match &args.manifest {
        Some(path) => {
            println!("booting from manifest {}", path.display());
            TenantManifest::load(path)?
        }
        None => {
            // Demo mode: fit, persist, and write a manifest — the same
            // artifact flow an operator deployment uses.
            let dir = std::env::temp_dir().join(format!("fsda-serve-demo-{}", std::process::id()));
            std::fs::create_dir_all(&dir)?;
            let mut lines = String::from("# fsda_serve demo manifest\n");
            for i in 0..args.tenants.max(1) {
                let tenant = format!("slice-{i}");
                let start = Instant::now();
                let artifact = fit_demo_artifact(&bundle, 100 + i as u64)?;
                println!(
                    "fitted {tenant} ({}) in {:.1}s",
                    artifact.method(),
                    start.elapsed().as_secs_f64()
                );
                let file = format!("{tenant}.fsda");
                std::fs::write(dir.join(&file), artifact.to_bytes()?)?;
                lines.push_str(&format!("{tenant} = {file}\n"));
            }
            let manifest_path = dir.join("tenants.manifest");
            std::fs::write(&manifest_path, &lines)?;
            println!("wrote demo manifest {}\n", manifest_path.display());
            let m = TenantManifest::load(&manifest_path)?;
            demo_dir = Some(dir);
            m
        }
    };

    let config = ServeConfig {
        shards: args.shards,
        guard: fsda_core::GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean),
        ..ServeConfig::default()
    };
    let start = Instant::now();
    let server = TenantServer::from_manifest(&manifest, config)?;
    println!(
        "booted {} tenant(s) over {} shard(s) in {:.1} ms: {}",
        server.tenants().len(),
        server.shards(),
        start.elapsed().as_secs_f64() * 1e3,
        server.tenants().join(", ")
    );
    // Lenient boot: tenants whose artifacts failed to load were skipped so
    // the rest of the fleet could come up. Surface each one so the
    // operator sees the degraded fleet, not just the survivors.
    for failure in server.boot_failures() {
        println!("boot FAILED {}: {}", failure.tenant, failure.error);
    }

    // Drive traffic round-robin across tenants, hot-swapping each tenant
    // `--swaps` times at evenly spaced points in the stream.
    let tenants: Vec<String> = server.tenants().to_vec();
    let x = bundle.target_test.features();
    let batch = |b: usize| -> Matrix {
        let idx: Vec<usize> = (0..args.rows)
            .map(|r| (b * args.rows + r) % x.rows())
            .collect();
        x.select_rows(&idx)
    };
    let swap_every = (args.batches / (args.swaps + 1)).max(1);
    let mut total_rows = 0usize;
    let mut total_secs = 0.0f64;
    let mut refit_seed = 1000u64;
    for b in 0..args.batches {
        if b > 0 && b % swap_every == 0 && b / swap_every <= args.swaps {
            for tenant in &tenants {
                let outcome = match (&args.manifest, demo_dir.is_some()) {
                    // Manifest mode: reload the (possibly re-written)
                    // artifact file — the operator's re-fit lands here.
                    (Some(_), _) => {
                        let entry = manifest
                            .entries()
                            .iter()
                            .find(|e| &e.tenant == tenant)
                            .ok_or("tenant vanished from manifest")?;
                        server.swap_from_bytes(tenant, &std::fs::read(&entry.path)?)?
                    }
                    // Demo mode: re-fit in process, as the closed drift
                    // loop would.
                    _ => {
                        refit_seed += 1;
                        server.swap(tenant, fit_demo_artifact(&bundle, refit_seed)?)?
                    }
                };
                println!(
                    "hot-swap {tenant}: v{} -> v{} (reclaimed {}, retired {})",
                    outcome.old_version,
                    outcome.new_version,
                    outcome.reclaimed,
                    outcome.still_retired
                );
            }
        }
        let tenant = &tenants[b % tenants.len()];
        let t0 = Instant::now();
        match server.predict(tenant, batch(b)) {
            Ok(resp) => {
                let secs = t0.elapsed().as_secs_f64();
                total_rows += resp.predictions.len();
                total_secs += secs;
                println!(
                    "batch {b:>3} -> {tenant:<10} {:>4} rows on artifact v{} in {:>6.2} ms",
                    resp.predictions.len(),
                    resp.artifact_version,
                    secs * 1e3
                );
            }
            Err(
                e @ (RequestError::TenantQueueFull { .. } | RequestError::ShardQueueFull { .. }),
            ) => {
                println!("batch {b:>3} -> {tenant:<10} shed: {e}");
            }
            Err(e) => return Err(e.into()),
        }
    }
    println!(
        "\nserved {} rows at {:.0} rows/sec",
        total_rows,
        total_rows as f64 / total_secs.max(1e-12)
    );

    println!("\n== per-tenant stats ==");
    println!(
        "{:<12} {:>5} {:>8} {:>6} {:>8} {:>9} {:>9} {:>7}",
        "tenant", "shard", "version", "swaps", "admitted", "rejected", "completed", "errors"
    );
    for tenant in &tenants {
        let s = server.stats(tenant)?;
        println!(
            "{:<12} {:>5} {:>8} {:>6} {:>8} {:>9} {:>9} {:>7}",
            s.tenant,
            s.shard,
            s.artifact_version,
            s.swaps,
            s.admitted,
            s.rejected,
            s.completed,
            s.serve_errors
        );
    }

    server.shutdown();
    println!("\n== telemetry snapshot ==");
    print!("{}", recorder.snapshot_now().render());
    telemetry::clear_recorder();

    if let Some(dir) = demo_dir {
        std::fs::remove_dir_all(&dir)?;
    }
    Ok(())
}
