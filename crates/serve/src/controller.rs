//! Closed-loop drift control: detect → re-fit → validate → hot-swap,
//! with failure containment at every stage.
//!
//! [`DriftController`] is the per-tenant supervisor that turns the
//! library's open-loop pieces — [`fsda_core::drift::DriftDetector`],
//! the re-fit registry, and the server's lock-free
//! [`crate::hotswap::SwapCell`] — into a self-healing loop:
//!
//! 1. **Detect.** Every serving window is scored against the
//!    source-fitted detector; corrupt windows (NaN/Inf cells, width
//!    mismatches) are rejected with a localized error instead of
//!    poisoning the statistics.
//! 2. **Re-fit.** On a re-adaptation recommendation, fresh few-shot
//!    samples are drawn from a bounded ring buffer of recent labeled
//!    target windows and handed to a [`Refitter`]. The default
//!    [`RegistryRefitter`] warm-starts the F-node search from the
//!    previous skeleton through [`fsda_core::fs::SeparationCache`],
//!    falling back to a cold search when the skeleton is stale.
//! 3. **Validate.** The candidate must beat the incumbent (restored from
//!    its last-good artifact bytes) on a held-back slice of the buffer by
//!    at least [`ControllerConfig::min_improvement`] macro-F1. Validation
//!    runs on the controller's thread — the request path never blocks.
//! 4. **Swap.** Only a validated candidate reaches
//!    [`crate::server::TenantServer::swap`]; its bytes become the new
//!    last-good artifact and its variant set seeds the next warm search.
//!
//! **Containment.** Every re-fit attempt runs on a worker thread under a
//! configurable deadline; a hung fit is detached and counted, never
//! joined. Attempts retry under the seeded-jitter
//! [`fsda_core::RetryPolicy`]. After
//! [`ControllerConfig::breaker_threshold`] consecutive failed cycles the
//! circuit breaker opens: the tenant keeps serving the last-good
//! artifact and re-fitting stops until the cooldown elapses, after which
//! a single half-open probe decides between closing and re-opening.
//!
//! Everything is observable through `control.*` telemetry (see
//! `docs/CONTROL.md` for the full metric table).

use crate::server::TenantServer;
use fsda_core::adapter::AdapterConfig;
use fsda_core::drift::{DriftConfig, DriftDetector, DriftError, DriftReport};
use fsda_core::fs::{SearchPath, SeparationCache};
use fsda_core::pipeline::registry::try_fit_with_separation;
use fsda_core::pipeline::restore;
use fsda_core::telemetry;
use fsda_core::{CoreError, DriftMitigator, FitError, GuardConfig, Method, RetryPolicy};
use fsda_data::fewshot::few_shot_subset;
use fsda_data::Dataset;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::metrics::macro_f1;
use std::collections::VecDeque;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Errors raised by [`DriftController`] construction and window intake.
#[derive(Debug)]
pub enum ControllerError {
    /// The controller's tenant is not registered on the server.
    UnknownTenant(String),
    /// A configuration field is out of range.
    InvalidConfig(String),
    /// The incumbent artifact bytes failed to restore, or restored to an
    /// unfitted pipeline.
    Incumbent(CoreError),
    /// A pushed window's column count disagrees with the source schema.
    WindowMismatch {
        /// Columns the detector was fitted on.
        expected: usize,
        /// Columns the offending window carries.
        got: usize,
    },
    /// A pushed window's class count disagrees with the source dataset.
    ClassMismatch {
        /// Classes in the source dataset.
        expected: usize,
        /// Classes the offending window declares.
        got: usize,
    },
    /// A pushed window holds a non-finite feature cell.
    CorruptWindow {
        /// Row of the first corrupt cell.
        row: usize,
        /// Column of the first corrupt cell.
        col: usize,
    },
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::UnknownTenant(t) => write!(f, "unknown tenant '{t}'"),
            ControllerError::InvalidConfig(m) => write!(f, "invalid controller config: {m}"),
            ControllerError::Incumbent(e) => write!(f, "incumbent artifact rejected: {e}"),
            ControllerError::WindowMismatch { expected, got } => {
                write!(f, "window has {got} columns, source schema has {expected}")
            }
            ControllerError::ClassMismatch { expected, got } => {
                write!(f, "window declares {got} classes, source has {expected}")
            }
            ControllerError::CorruptWindow { row, col } => {
                write!(f, "window cell ({row}, {col}) is not finite")
            }
        }
    }
}

impl std::error::Error for ControllerError {}

/// Circuit-breaker state of a [`DriftController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: drift triggers re-adaptation cycles.
    Closed,
    /// Too many consecutive failed cycles: serve last-good, no re-fits
    /// until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next re-adaptation runs as a single-attempt
    /// probe that either closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding reported as `control.breaker.<tenant>`:
    /// 0 closed, 0.5 half-open, 1 open.
    fn gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 0.5,
            BreakerState::Open => 1.0,
        }
    }
}

/// Control-loop knobs; see the [module docs](self) for the loop itself.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Detector thresholds (fitted on the source features at construction).
    pub drift: DriftConfig,
    /// Guard applied to validation-time predictions.
    pub guard: GuardConfig,
    /// Maximum labeled target windows kept in the ring buffer.
    pub buffer_capacity: usize,
    /// Few-shot samples per class drawn for each re-fit attempt.
    pub shots_per_class: usize,
    /// Trailing fraction of every buffered window held back for the
    /// validation gate (never shown to the re-fit).
    pub holdback_fraction: f64,
    /// Macro-F1 margin a candidate must clear over the incumbent.
    pub min_improvement: f64,
    /// Wall-clock budget per re-fit attempt; a slower fit is detached
    /// and counted as a timeout.
    pub attempt_deadline: Duration,
    /// Retry schedule across attempts within one re-adaptation cycle.
    pub retry: RetryPolicy,
    /// Consecutive failed cycles that trip the breaker open.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Threads for validation-time batch prediction.
    pub predict_threads: Option<usize>,
    /// Base seed; each attempt derives its own fit seed from it.
    pub seed: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            drift: DriftConfig::default(),
            guard: GuardConfig::default(),
            buffer_capacity: 8,
            shots_per_class: 5,
            holdback_fraction: 0.25,
            min_improvement: 0.0,
            attempt_deadline: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(60),
            predict_threads: None,
            seed: 0,
        }
    }
}

impl ControllerConfig {
    fn validate(&self) -> Result<(), String> {
        if self.buffer_capacity == 0 {
            return Err("buffer_capacity must be at least 1".into());
        }
        if self.shots_per_class == 0 {
            return Err("shots_per_class must be at least 1".into());
        }
        if !(self.holdback_fraction > 0.0 && self.holdback_fraction < 1.0) {
            return Err(format!(
                "holdback_fraction must be in (0, 1), got {}",
                self.holdback_fraction
            ));
        }
        if self.breaker_threshold == 0 {
            return Err("breaker_threshold must be at least 1".into());
        }
        if self.attempt_deadline.is_zero() {
            return Err("attempt_deadline must be non-zero".into());
        }
        Ok(())
    }
}

/// One re-fit job handed to a [`Refitter`] worker thread.
#[derive(Debug)]
pub struct RefitRequest {
    /// The (fixed) source-domain training set.
    pub source: Arc<Dataset>,
    /// Few-shot target samples drawn for this attempt.
    pub shots: Dataset,
    /// Variant set of the incumbent, for warm-started separation.
    pub prev_variant: Option<Vec<usize>>,
    /// Fit seed for this attempt (unique per attempt).
    pub seed: u64,
    /// Zero-based attempt index within the cycle.
    pub attempt: usize,
}

/// A successful re-fit: the candidate artifact and which search path
/// produced its separation ([`SearchPath::Cold`] for pipelines that do
/// not factor through one).
#[derive(Debug)]
pub struct Refit {
    /// The fitted candidate, not yet validated.
    pub artifact: Box<dyn DriftMitigator>,
    /// Warm or cold F-node search (cold for non-FS pipelines).
    pub path: SearchPath,
}

/// The re-fit strategy a [`DriftController`] supervises. Implementations
/// must be cheap to share across threads — each attempt runs on a fresh
/// deadline-bounded worker.
pub trait Refitter: Send + Sync {
    /// Fits a candidate pipeline from the request, or reports a typed
    /// failure. Runs on a worker thread; may be abandoned on deadline.
    fn refit(&self, request: RefitRequest) -> Result<Refit, FitError>;
}

/// Default [`Refitter`]: dispatches through the
/// [`fsda_core::Method`] registry. FS-family methods re-separate through
/// a [`SeparationCache`] (warm-started from `prev_variant` when
/// applicable); every other method re-fits cold via
/// [`DriftMitigator::try_fit`].
pub struct RegistryRefitter {
    method: Method,
    config: AdapterConfig,
    guard: GuardConfig,
    cache: Option<SeparationCache>,
}

impl RegistryRefitter {
    /// Builds the refitter, precomputing the separation cache (source
    /// normalizer + CI sufficient statistics) for FS-family methods.
    ///
    /// # Errors
    ///
    /// Propagates cache construction failures (corrupt or undersized
    /// source data) for FS-family methods.
    pub fn new(
        method: Method,
        config: AdapterConfig,
        guard: GuardConfig,
        source: &Dataset,
    ) -> fsda_core::Result<Self> {
        let cache = match method {
            Method::FsGan | Method::FsNoCond | Method::FsVae | Method::FsVanillaAe | Method::Fs => {
                Some(SeparationCache::new(source, &config.fs)?)
            }
            Method::Cmt
            | Method::Icd
            | Method::SrcOnly
            | Method::TarOnly
            | Method::SourceAndTarget
            | Method::FineTune
            | Method::Coral
            | Method::Dann
            | Method::Scl
            | Method::MatchNet
            | Method::ProtoNet
            | Method::Fada
            | Method::Fmaa => None,
        };
        Ok(RegistryRefitter {
            method,
            config,
            guard,
            cache,
        })
    }

    /// The method this refitter rebuilds.
    pub fn method(&self) -> Method {
        self.method
    }
}

impl Refitter for RegistryRefitter {
    fn refit(&self, request: RefitRequest) -> Result<Refit, FitError> {
        if let Some(cache) = &self.cache {
            // Localize corrupt shot cells before they reach the CI merge,
            // matching the cold path's typed error.
            let shots = request.shots.features();
            for r in 0..shots.rows() {
                for c in 0..shots.cols() {
                    if !shots.get(r, c).is_finite() {
                        return Err(FitError::CorruptShots { row: r, col: c });
                    }
                }
            }
            let (separation, path) = fsda_core::FeatureSeparation::fit_warm(
                cache,
                &request.shots,
                request.prev_variant.as_deref(),
            )?;
            if let Some(artifact) = try_fit_with_separation(
                self.method,
                &request.source,
                separation,
                &self.config,
                request.seed,
                &self.guard,
            )? {
                return Ok(Refit { artifact, path });
            }
        }
        let mut artifact = self.method.build(&self.config, request.seed);
        artifact.try_fit(&request.source, &request.shots, &self.guard)?;
        Ok(Refit {
            artifact,
            path: SearchPath::Cold,
        })
    }
}

/// Why a re-adaptation cycle ended without a swap.
#[derive(Debug, Clone)]
pub struct FailureSummary {
    /// Attempts run this cycle.
    pub attempts: usize,
    /// Attempts that hit the deadline.
    pub timeouts: usize,
    /// Human-readable cause of the final attempt's failure.
    pub last_error: String,
    /// Whether this cycle tripped the breaker open.
    pub breaker_tripped: bool,
}

/// A cycle whose best candidate lost the validation gate.
#[derive(Debug, Clone)]
pub struct RejectSummary {
    /// Best candidate macro-F1 on the held-back slice.
    pub candidate_f1: f64,
    /// Incumbent macro-F1 on the same slice.
    pub incumbent_f1: f64,
    /// Attempts run this cycle.
    pub attempts: usize,
    /// Whether this cycle tripped the breaker open.
    pub breaker_tripped: bool,
}

/// A validated candidate reached the server.
#[derive(Debug, Clone)]
pub struct SwapSummary {
    /// Version new requests observe after the swap.
    pub version: u64,
    /// Candidate macro-F1 on the held-back slice.
    pub candidate_f1: f64,
    /// Incumbent macro-F1 on the same slice.
    pub incumbent_f1: f64,
    /// Warm or cold separation search for the winning candidate.
    pub path: SearchPath,
    /// Attempts run this cycle (including the winning one).
    pub attempts: usize,
    /// Wall-clock from drift detection to completed swap.
    pub detect_to_swap: Duration,
}

/// Outcome of one [`DriftController::observe`] call.
#[derive(Debug)]
pub enum ControlOutcome {
    /// The window stayed inside the source envelope.
    NoDrift(DriftReport),
    /// The window itself was rejected before scoring.
    CorruptWindow(DriftError),
    /// Drift detected, but the breaker is open; serving last-good.
    BreakerOpen {
        /// Time until the next half-open probe is allowed.
        remaining: Duration,
    },
    /// A validated candidate was hot-swapped in.
    Swapped(SwapSummary),
    /// All candidates lost the validation gate; incumbent retained.
    Rejected(RejectSummary),
    /// No attempt produced a candidate; incumbent retained.
    Failed(FailureSummary),
}

/// What a deadline-bounded re-fit attempt produced.
enum AttemptResult {
    Fit(Result<Refit, FitError>),
    Timeout,
    Panicked,
}

/// The per-tenant closed-loop drift supervisor; see the
/// [module docs](self).
pub struct DriftController {
    tenant: String,
    server: Arc<TenantServer>,
    source: Arc<Dataset>,
    refitter: Arc<dyn Refitter>,
    detector: DriftDetector,
    config: ControllerConfig,
    buffer: VecDeque<Dataset>,
    last_good: Vec<u8>,
    prev_variant: Option<Vec<usize>>,
    breaker: BreakerState,
    consecutive_failures: u32,
    open_since: Option<Instant>,
    refits: u64,
    rng: SeededRng,
}

impl std::fmt::Debug for DriftController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftController")
            .field("tenant", &self.tenant)
            .field("breaker", &self.breaker)
            .field("buffered_windows", &self.buffer.len())
            .field("refits", &self.refits)
            .finish()
    }
}

impl DriftController {
    /// Builds a controller for `tenant`, fitting the drift detector on
    /// `source` and recording `incumbent` as the last-good artifact
    /// (its variant set, if any, seeds the first warm search).
    ///
    /// The incumbent bytes are passed in rather than read back from the
    /// server: reader slots on the serving path are single-thread-owned,
    /// and the booting process already holds the artifact it loaded.
    ///
    /// # Errors
    ///
    /// [`ControllerError::UnknownTenant`] when the server does not route
    /// `tenant`, [`ControllerError::InvalidConfig`] on out-of-range
    /// knobs, and [`ControllerError::Incumbent`] when the artifact bytes
    /// fail to restore or restore unfitted.
    pub fn new(
        tenant: impl Into<String>,
        server: Arc<TenantServer>,
        source: Arc<Dataset>,
        incumbent: Vec<u8>,
        refitter: Arc<dyn Refitter>,
        config: ControllerConfig,
    ) -> Result<Self, ControllerError> {
        let tenant = tenant.into();
        config.validate().map_err(ControllerError::InvalidConfig)?;
        if !server.tenants().contains(&tenant) {
            return Err(ControllerError::UnknownTenant(tenant));
        }
        let restored = restore(&incumbent).map_err(ControllerError::Incumbent)?;
        if !restored.is_fitted() {
            return Err(ControllerError::Incumbent(CoreError::InvalidInput(
                "incumbent artifact restored unfitted".into(),
            )));
        }
        let prev_variant = restored.variant_features();
        let detector = DriftDetector::fit(source.features(), config.drift.clone());
        let rng = SeededRng::new(config.seed ^ 0xc0_17_20_11);
        Ok(DriftController {
            tenant,
            server,
            source,
            refitter,
            detector,
            config,
            buffer: VecDeque::new(),
            last_good: incumbent,
            prev_variant,
            breaker: BreakerState::Closed,
            consecutive_failures: 0,
            open_since: None,
            refits: 0,
            rng,
        })
    }

    /// The tenant this controller supervises.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Current circuit-breaker state.
    pub fn breaker(&self) -> BreakerState {
        self.breaker
    }

    /// Labeled target windows currently buffered.
    pub fn buffered_windows(&self) -> usize {
        self.buffer.len()
    }

    /// Total re-fit attempts launched over this controller's lifetime.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Serialized bytes of the last artifact that passed validation
    /// (initially the incumbent handed to [`DriftController::new`]).
    pub fn last_good_artifact(&self) -> &[u8] {
        &self.last_good
    }

    /// Operator rollback: replaces the last-good artifact, publishes it
    /// to the server, and resets the breaker. The watchdog path for a
    /// swap that validated but misbehaves in production — the controller
    /// returns to a known-good incumbent and re-fitting restarts fresh.
    ///
    /// # Errors
    ///
    /// [`ControllerError::Incumbent`] when the bytes fail to restore or
    /// restore unfitted (the rollback does not reach the server), and
    /// [`ControllerError::UnknownTenant`] if the server stopped routing
    /// this tenant.
    pub fn rollback(&mut self, bytes: Vec<u8>) -> Result<(), ControllerError> {
        let restored = restore(&bytes).map_err(ControllerError::Incumbent)?;
        if !restored.is_fitted() {
            return Err(ControllerError::Incumbent(CoreError::InvalidInput(
                "rollback artifact restored unfitted".into(),
            )));
        }
        let prev_variant = restored.variant_features();
        self.server
            .swap(&self.tenant, restored)
            .map_err(|_| ControllerError::UnknownTenant(self.tenant.clone()))?;
        telemetry::counter(&format!("control.rollbacks.{}", self.tenant), 1);
        self.prev_variant = prev_variant;
        self.last_good = bytes;
        self.consecutive_failures = 0;
        self.open_since = None;
        self.set_breaker(BreakerState::Closed);
        Ok(())
    }

    /// Variant set seeding the next warm search, when the last-good
    /// pipeline factors through a feature separation.
    pub fn prev_variant(&self) -> Option<&[usize]> {
        self.prev_variant.as_deref()
    }

    /// Adds a labeled target window to the few-shot ring buffer,
    /// evicting the oldest once [`ControllerConfig::buffer_capacity`] is
    /// reached. Corrupt windows are rejected with a localized error and
    /// never buffered.
    ///
    /// # Errors
    ///
    /// [`ControllerError::WindowMismatch`] /
    /// [`ControllerError::ClassMismatch`] on schema disagreements and
    /// [`ControllerError::CorruptWindow`] on the first non-finite cell.
    pub fn push_window(&mut self, window: Dataset) -> Result<(), ControllerError> {
        if window.num_features() != self.detector.num_features() {
            return Err(ControllerError::WindowMismatch {
                expected: self.detector.num_features(),
                got: window.num_features(),
            });
        }
        if window.num_classes() != self.source.num_classes() {
            return Err(ControllerError::ClassMismatch {
                expected: self.source.num_classes(),
                got: window.num_classes(),
            });
        }
        let features = window.features();
        for r in 0..features.rows() {
            for c in 0..features.cols() {
                if !features.get(r, c).is_finite() {
                    telemetry::counter(&format!("control.corrupt_windows.{}", self.tenant), 1);
                    return Err(ControllerError::CorruptWindow { row: r, col: c });
                }
            }
        }
        if self.buffer.len() == self.config.buffer_capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back(window);
        Ok(())
    }

    /// Scores one unlabeled serving window and, when the detector
    /// recommends re-adaptation, runs a full detect → re-fit → validate
    /// → swap cycle (subject to the breaker). Never blocks the serving
    /// path: validation and re-fitting happen on this thread and a
    /// worker, not on the shard pool.
    pub fn observe(&mut self, window: &Matrix) -> ControlOutcome {
        let report = match self.detector.try_score(window) {
            Ok(report) => report,
            Err(e) => {
                telemetry::counter(&format!("control.corrupt_windows.{}", self.tenant), 1);
                return ControlOutcome::CorruptWindow(e);
            }
        };
        if !report.readapt {
            return ControlOutcome::NoDrift(report);
        }
        if self.breaker == BreakerState::Open {
            let elapsed = self.open_since.map(|t| t.elapsed()).unwrap_or_default();
            if elapsed < self.config.breaker_cooldown {
                telemetry::counter(&format!("control.breaker_rejected.{}", self.tenant), 1);
                return ControlOutcome::BreakerOpen {
                    remaining: self.config.breaker_cooldown - elapsed,
                };
            }
            self.set_breaker(BreakerState::HalfOpen);
        }
        self.readapt(report)
    }

    /// One re-adaptation cycle: retries under the policy, validates each
    /// candidate against the restored incumbent, swaps the first winner.
    fn readapt(&mut self, report: DriftReport) -> ControlOutcome {
        let started = Instant::now();
        telemetry::counter(&format!("control.cycles.{}", self.tenant), 1);

        let (adapt_pool, val_set) = match self.split_buffer() {
            Ok(split) => split,
            Err(reason) => return self.cycle_failure(0, 0, reason),
        };
        let incumbent_f1 = self.incumbent_f1(&val_set);

        let max_attempts = if self.breaker == BreakerState::HalfOpen {
            1
        } else {
            self.config.retry.max_attempts.max(1)
        };
        let delays = self.config.retry.delays();
        let mut timeouts = 0usize;
        let mut best_reject: Option<f64> = None;
        let mut last_error = String::from("no attempts were run");

        for attempt in 0..max_attempts {
            if attempt > 0 {
                if let Some(delay) = delays.get(attempt - 1) {
                    thread::sleep(*delay);
                }
            }
            self.refits += 1;
            telemetry::counter(&format!("control.attempts.{}", self.tenant), 1);
            let shots =
                match few_shot_subset(&adapt_pool, self.config.shots_per_class, &mut self.rng) {
                    Ok(shots) => shots,
                    Err(e) => {
                        last_error = format!("few-shot draw failed: {e}");
                        telemetry::counter(&format!("control.failures.{}", self.tenant), 1);
                        continue;
                    }
                };
            let request = RefitRequest {
                source: Arc::clone(&self.source),
                shots,
                prev_variant: self.prev_variant.clone(),
                seed: self.config.seed.wrapping_add(self.refits),
                attempt,
            };
            let attempt_start = Instant::now();
            let result = run_with_deadline(
                Arc::clone(&self.refitter),
                request,
                self.config.attempt_deadline,
            );
            telemetry::duration(
                "control.attempt.seconds",
                attempt_start.elapsed().as_secs_f64(),
            );
            let refit = match result {
                AttemptResult::Fit(Ok(refit)) => refit,
                AttemptResult::Fit(Err(e)) => {
                    last_error = e.to_string();
                    telemetry::counter(&format!("control.failures.{}", self.tenant), 1);
                    continue;
                }
                AttemptResult::Timeout => {
                    timeouts += 1;
                    last_error = format!(
                        "re-fit exceeded the {:?} deadline (worker detached)",
                        self.config.attempt_deadline
                    );
                    telemetry::counter(&format!("control.timeouts.{}", self.tenant), 1);
                    continue;
                }
                AttemptResult::Panicked => {
                    last_error = "re-fit worker panicked".into();
                    telemetry::counter(&format!("control.failures.{}", self.tenant), 1);
                    continue;
                }
            };
            let path_metric = match refit.path {
                SearchPath::Warm => "control.warm",
                SearchPath::Cold => "control.cold",
            };
            telemetry::counter(&format!("{path_metric}.{}", self.tenant), 1);

            // Validation always scores at F64Exact (`try_predict_batch`),
            // independent of the serving precision policy: promotion
            // decisions must not hinge on f32 rounding.
            let candidate_pred = refit.artifact.try_predict_batch(
                val_set.features(),
                self.config.predict_threads,
                &self.config.guard,
            );
            let pred = match candidate_pred {
                Ok(pred) => pred,
                Err(e) => {
                    last_error = format!("candidate failed validation predictions: {e}");
                    telemetry::counter(&format!("control.failures.{}", self.tenant), 1);
                    continue;
                }
            };
            let candidate_f1 = macro_f1(val_set.labels(), &pred, val_set.num_classes());
            if candidate_f1 < incumbent_f1 + self.config.min_improvement {
                best_reject = Some(best_reject.map_or(candidate_f1, |b: f64| b.max(candidate_f1)));
                last_error = format!(
                    "validation gate: candidate F1 {candidate_f1:.4} did not beat \
                     incumbent {incumbent_f1:.4} by {}",
                    self.config.min_improvement
                );
                telemetry::counter(&format!("control.rejects.{}", self.tenant), 1);
                continue;
            }
            let bytes = match refit.artifact.to_bytes() {
                Ok(bytes) => bytes,
                Err(e) => {
                    last_error = format!("candidate failed to serialize: {e}");
                    telemetry::counter(&format!("control.failures.{}", self.tenant), 1);
                    continue;
                }
            };
            let next_variant = refit.artifact.variant_features();
            match self.server.swap(&self.tenant, refit.artifact) {
                Ok(outcome) => {
                    self.last_good = bytes;
                    self.prev_variant = next_variant;
                    self.consecutive_failures = 0;
                    self.open_since = None;
                    self.set_breaker(BreakerState::Closed);
                    let detect_to_swap = started.elapsed();
                    telemetry::counter(&format!("control.swaps.{}", self.tenant), 1);
                    telemetry::duration(
                        "control.detect_to_swap.seconds",
                        detect_to_swap.as_secs_f64(),
                    );
                    let _ = report;
                    return ControlOutcome::Swapped(SwapSummary {
                        version: outcome.new_version,
                        candidate_f1,
                        incumbent_f1,
                        path: refit.path,
                        attempts: attempt + 1,
                        detect_to_swap,
                    });
                }
                Err(e) => {
                    last_error = format!("hot-swap rejected: {e}");
                    telemetry::counter(&format!("control.failures.{}", self.tenant), 1);
                    continue;
                }
            }
        }

        if let Some(candidate_f1) = best_reject {
            let breaker_tripped = self.on_cycle_failure();
            telemetry::counter(&format!("control.cycles_rejected.{}", self.tenant), 1);
            ControlOutcome::Rejected(RejectSummary {
                candidate_f1,
                incumbent_f1,
                attempts: max_attempts,
                breaker_tripped,
            })
        } else {
            self.cycle_failure(max_attempts, timeouts, last_error)
        }
    }

    /// Concatenates the buffer into an adaptation pool (leading rows of
    /// every window) and a held-back validation set (trailing rows).
    fn split_buffer(&self) -> Result<(Dataset, Dataset), String> {
        if self.buffer.is_empty() {
            return Err("no buffered target windows to re-fit from".into());
        }
        let mut adapt: Option<Dataset> = None;
        let mut hold: Option<Dataset> = None;
        for window in &self.buffer {
            let n = window.len();
            if n < 2 {
                // Too small to split; the whole window adapts.
                adapt = Some(match adapt {
                    Some(a) => a.concat(window).map_err(|e| e.to_string())?,
                    None => window.clone(),
                });
                continue;
            }
            let holdback =
                ((n as f64 * self.config.holdback_fraction).round() as usize).clamp(1, n - 1);
            let split = n - holdback;
            let adapt_idx: Vec<usize> = (0..split).collect();
            let hold_idx: Vec<usize> = (split..n).collect();
            let a = window.subset(&adapt_idx);
            let h = window.subset(&hold_idx);
            adapt = Some(match adapt {
                Some(acc) => acc.concat(&a).map_err(|e| e.to_string())?,
                None => a,
            });
            hold = Some(match hold {
                Some(acc) => acc.concat(&h).map_err(|e| e.to_string())?,
                None => h,
            });
        }
        let adapt = adapt.ok_or_else(|| "adaptation pool is empty".to_string())?;
        let hold = hold.ok_or_else(|| {
            "validation hold-back is empty (every buffered window has < 2 rows)".to_string()
        })?;
        Ok((adapt, hold))
    }

    /// Incumbent macro-F1 on the validation slice; an incumbent that
    /// cannot be restored or cannot predict scores negative infinity, so
    /// any working candidate replaces it.
    fn incumbent_f1(&self, val_set: &Dataset) -> f64 {
        let incumbent = match restore(&self.last_good) {
            Ok(incumbent) => incumbent,
            Err(_) => return f64::NEG_INFINITY,
        };
        // Scored at F64Exact, like the candidate: the validation gate
        // compares both sides at the same (exact) precision.
        match incumbent.try_predict_batch(
            val_set.features(),
            self.config.predict_threads,
            &self.config.guard,
        ) {
            Ok(pred) => macro_f1(val_set.labels(), &pred, val_set.num_classes()),
            Err(_) => f64::NEG_INFINITY,
        }
    }

    fn cycle_failure(
        &mut self,
        attempts: usize,
        timeouts: usize,
        reason: String,
    ) -> ControlOutcome {
        let breaker_tripped = self.on_cycle_failure();
        ControlOutcome::Failed(FailureSummary {
            attempts,
            timeouts,
            last_error: reason,
            breaker_tripped,
        })
    }

    /// Registers a failed cycle: a half-open probe re-opens immediately;
    /// otherwise the failure streak trips the breaker at the threshold.
    /// Returns whether the breaker is open after this call.
    fn on_cycle_failure(&mut self) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let reopen = self.breaker == BreakerState::HalfOpen
            || self.consecutive_failures >= self.config.breaker_threshold;
        if reopen {
            if self.breaker != BreakerState::Open {
                telemetry::counter(&format!("control.breaker_trips.{}", self.tenant), 1);
            }
            self.open_since = Some(Instant::now());
            self.set_breaker(BreakerState::Open);
        }
        self.breaker == BreakerState::Open
    }

    fn set_breaker(&mut self, state: BreakerState) {
        self.breaker = state;
        telemetry::gauge(&format!("control.breaker.{}", self.tenant), state.gauge());
    }
}

/// Runs one re-fit attempt on a worker thread under `deadline`. A
/// timed-out worker is detached (its eventual result is dropped with the
/// receiver); a disconnected channel means the worker panicked.
fn run_with_deadline(
    refitter: Arc<dyn Refitter>,
    request: RefitRequest,
    deadline: Duration,
) -> AttemptResult {
    let (tx, rx) = mpsc::sync_channel::<Result<Refit, FitError>>(1);
    let worker = thread::Builder::new()
        .name("fsda-refit".into())
        .spawn(move || {
            let _ = tx.send(refitter.refit(request));
        });
    let worker = match worker {
        Ok(handle) => handle,
        Err(e) => {
            return AttemptResult::Fit(Err(FitError::Core(CoreError::InvalidInput(format!(
                "failed to spawn re-fit worker: {e}"
            )))))
        }
    };
    match rx.recv_timeout(deadline) {
        Ok(result) => {
            let _ = worker.join();
            AttemptResult::Fit(result)
        }
        Err(mpsc::RecvTimeoutError::Timeout) => AttemptResult::Timeout,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            let _ = worker.join();
            AttemptResult::Panicked
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use fsda_data::synth5gc::Synth5gc;

    fn bundle() -> fsda_data::synth5gc::Synth5gcBundle {
        Synth5gc::small().generate(11).unwrap()
    }

    /// Detector thresholds loose enough that the synthetic target
    /// reliably triggers re-adaptation.
    fn eager_drift() -> DriftConfig {
        DriftConfig {
            z_threshold: 0.5,
            ks_threshold: 0.1,
            feature_fraction: 0.01,
            ..DriftConfig::default()
        }
    }

    fn quick_config() -> ControllerConfig {
        ControllerConfig {
            drift: eager_drift(),
            retry: RetryPolicy::immediate(2),
            attempt_deadline: Duration::from_secs(30),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(1),
            shots_per_class: 3,
            seed: 7,
            ..ControllerConfig::default()
        }
    }

    /// Server with one tenant running a deliberately stale incumbent —
    /// fitted on label-rotated source data, so any honest re-fit beats
    /// it at the validation gate — plus the incumbent's bytes.
    fn boot(b: &fsda_data::synth5gc::Synth5gcBundle) -> (Arc<TenantServer>, Vec<u8>) {
        let k = b.source_train.num_classes();
        let rotated = Dataset::new(
            b.source_train.features().clone(),
            b.source_train
                .labels()
                .iter()
                .map(|&y| (y + 1) % k)
                .collect(),
            k,
        )
        .unwrap();
        let mut incumbent = Method::SrcOnly.build(&AdapterConfig::quick(), 5);
        incumbent
            .try_fit(&rotated, &rotated, &GuardConfig::default())
            .unwrap();
        let bytes = incumbent.to_bytes().unwrap();
        let server = TenantServer::from_artifacts(
            vec![("slice-a".into(), incumbent)],
            ServeConfig::default(),
        )
        .unwrap();
        (Arc::new(server), bytes)
    }

    fn tar_only_refitter(b: &fsda_data::synth5gc::Synth5gcBundle) -> Arc<RegistryRefitter> {
        Arc::new(
            RegistryRefitter::new(
                Method::TarOnly,
                AdapterConfig::quick(),
                GuardConfig::default(),
                &b.source_train,
            )
            .unwrap(),
        )
    }

    struct FailingRefitter;
    impl Refitter for FailingRefitter {
        fn refit(&self, _request: RefitRequest) -> Result<Refit, FitError> {
            Err(FitError::Core(CoreError::Model("injected failure".into())))
        }
    }

    struct SlowRefitter(Duration);
    impl Refitter for SlowRefitter {
        fn refit(&self, _request: RefitRequest) -> Result<Refit, FitError> {
            thread::sleep(self.0);
            Err(FitError::Core(CoreError::Model("too late anyway".into())))
        }
    }

    #[test]
    fn rejects_invalid_config() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        for broken in [
            ControllerConfig {
                buffer_capacity: 0,
                ..quick_config()
            },
            ControllerConfig {
                holdback_fraction: 1.0,
                ..quick_config()
            },
            ControllerConfig {
                breaker_threshold: 0,
                ..quick_config()
            },
        ] {
            let err = DriftController::new(
                "slice-a",
                Arc::clone(&server),
                Arc::clone(&source),
                bytes.clone(),
                tar_only_refitter(&b),
                broken,
            )
            .unwrap_err();
            assert!(matches!(err, ControllerError::InvalidConfig(_)));
        }
    }

    #[test]
    fn rejects_unknown_tenant_and_bad_incumbent() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let err = DriftController::new(
            "nope",
            Arc::clone(&server),
            Arc::clone(&source),
            bytes.clone(),
            tar_only_refitter(&b),
            quick_config(),
        )
        .unwrap_err();
        assert!(matches!(err, ControllerError::UnknownTenant(_)));
        let err = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            source,
            vec![1, 2, 3],
            tar_only_refitter(&b),
            quick_config(),
        )
        .unwrap_err();
        assert!(matches!(err, ControllerError::Incumbent(_)));
    }

    #[test]
    fn push_window_rejects_corrupt_and_mismatched() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            source,
            bytes,
            tar_only_refitter(&b),
            quick_config(),
        )
        .unwrap();

        let narrow = Dataset::new(
            Matrix::zeros(2, 3),
            vec![0, 1],
            b.source_train.num_classes(),
        )
        .unwrap();
        assert!(matches!(
            ctl.push_window(narrow),
            Err(ControllerError::WindowMismatch { .. })
        ));

        let mut features = b.target_pool.features().clone();
        features.set(1, 2, f64::NAN);
        let corrupt = Dataset::new(
            features,
            b.target_pool.labels().to_vec(),
            b.target_pool.num_classes(),
        )
        .unwrap();
        assert!(matches!(
            ctl.push_window(corrupt),
            Err(ControllerError::CorruptWindow { row: 1, col: 2 })
        ));
        assert_eq!(ctl.buffered_windows(), 0);

        ctl.push_window(b.target_pool.clone()).unwrap();
        assert_eq!(ctl.buffered_windows(), 1);
    }

    #[test]
    fn buffer_is_bounded() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let config = ControllerConfig {
            buffer_capacity: 2,
            ..quick_config()
        };
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            source,
            bytes,
            tar_only_refitter(&b),
            config,
        )
        .unwrap();
        for _ in 0..5 {
            ctl.push_window(b.target_pool.clone()).unwrap();
        }
        assert_eq!(ctl.buffered_windows(), 2);
    }

    #[test]
    fn no_drift_on_source_window() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            source,
            bytes,
            tar_only_refitter(&b),
            ControllerConfig {
                drift: DriftConfig::default(),
                ..quick_config()
            },
        )
        .unwrap();
        ctl.push_window(b.target_pool.clone()).unwrap();
        let outcome = ctl.observe(b.source_train.features());
        assert!(matches!(outcome, ControlOutcome::NoDrift(_)));
    }

    #[test]
    fn corrupt_serving_window_is_contained() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            source,
            bytes,
            tar_only_refitter(&b),
            quick_config(),
        )
        .unwrap();
        let mut window = b.target_test.features().clone();
        window.set(0, 4, f64::INFINITY);
        let outcome = ctl.observe(&window);
        assert!(matches!(
            outcome,
            ControlOutcome::CorruptWindow(DriftError::NonFinite { row: 0, col: 4 })
        ));
    }

    #[test]
    fn drift_triggers_validated_swap() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            source,
            bytes,
            tar_only_refitter(&b),
            quick_config(),
        )
        .unwrap();
        ctl.push_window(b.target_pool.clone()).unwrap();
        let outcome = ctl.observe(b.target_test.features());
        match outcome {
            ControlOutcome::Swapped(swap) => {
                assert!(swap.candidate_f1 >= swap.incumbent_f1);
                assert_eq!(swap.version, 2);
                let response = server
                    .predict("slice-a", b.target_test.features().clone())
                    .unwrap();
                assert_eq!(response.artifact_version, 2);
            }
            other => panic!("expected a swap, got {other:?}"),
        }
        // The winning artifact became the new last-good incumbent.
        assert_eq!(ctl.breaker(), BreakerState::Closed);
    }

    #[test]
    fn failures_trip_breaker_and_probe_recovers() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            Arc::clone(&source),
            bytes,
            Arc::new(FailingRefitter),
            quick_config(),
        )
        .unwrap();
        ctl.push_window(b.target_pool.clone()).unwrap();

        // breaker_threshold = 2 failed cycles trip the breaker.
        let first = ctl.observe(b.target_test.features());
        assert!(matches!(
            &first,
            ControlOutcome::Failed(f) if !f.breaker_tripped
        ));
        let second = ctl.observe(b.target_test.features());
        assert!(matches!(
            &second,
            ControlOutcome::Failed(f) if f.breaker_tripped
        ));
        assert_eq!(ctl.breaker(), BreakerState::Open);

        // Serving never stopped, and the version never moved.
        let response = server
            .predict("slice-a", b.target_test.features().clone())
            .unwrap();
        assert_eq!(response.artifact_version, 1);

        // After the cooldown the half-open probe (healthy refitter now)
        // closes the breaker via a validated swap.
        thread::sleep(Duration::from_millis(5));
        ctl.refitter = tar_only_refitter(&b);
        let probe = ctl.observe(b.target_test.features());
        assert!(matches!(probe, ControlOutcome::Swapped(_)));
        assert_eq!(ctl.breaker(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            Arc::clone(&source),
            bytes,
            Arc::new(FailingRefitter),
            quick_config(),
        )
        .unwrap();
        ctl.push_window(b.target_pool.clone()).unwrap();
        for _ in 0..2 {
            ctl.observe(b.target_test.features());
        }
        assert_eq!(ctl.breaker(), BreakerState::Open);
        thread::sleep(Duration::from_millis(5));
        let probe = ctl.observe(b.target_test.features());
        assert!(matches!(
            probe,
            ControlOutcome::Failed(f) if f.breaker_tripped && f.attempts == 1
        ));
        assert_eq!(ctl.breaker(), BreakerState::Open);
    }

    #[test]
    fn open_breaker_serves_last_good_without_refitting() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let config = ControllerConfig {
            breaker_cooldown: Duration::from_secs(3600),
            ..quick_config()
        };
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            source,
            bytes,
            Arc::new(FailingRefitter),
            config,
        )
        .unwrap();
        ctl.push_window(b.target_pool.clone()).unwrap();
        for _ in 0..2 {
            ctl.observe(b.target_test.features());
        }
        let refits_before = ctl.refits();
        let outcome = ctl.observe(b.target_test.features());
        assert!(matches!(outcome, ControlOutcome::BreakerOpen { .. }));
        assert_eq!(ctl.refits(), refits_before);
    }

    #[test]
    fn deadline_detaches_hung_refit() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let config = ControllerConfig {
            attempt_deadline: Duration::from_millis(20),
            retry: RetryPolicy::immediate(1),
            breaker_threshold: 10,
            ..quick_config()
        };
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            source,
            bytes,
            Arc::new(SlowRefitter(Duration::from_millis(500))),
            config,
        )
        .unwrap();
        ctl.push_window(b.target_pool.clone()).unwrap();
        let started = Instant::now();
        let outcome = ctl.observe(b.target_test.features());
        assert!(started.elapsed() < Duration::from_millis(450));
        assert!(matches!(
            outcome,
            ControlOutcome::Failed(f) if f.timeouts == 1
        ));
        let response = server
            .predict("slice-a", b.target_test.features().clone())
            .unwrap();
        assert_eq!(response.artifact_version, 1);
    }

    #[test]
    fn registry_refitter_warm_starts_fs_family() {
        let b = bundle();
        let refitter = RegistryRefitter::new(
            Method::Fs,
            AdapterConfig::quick(),
            GuardConfig::default(),
            &b.source_train,
        )
        .unwrap();
        let mut rng = SeededRng::new(3);
        let shots = few_shot_subset(&b.target_pool, 3, &mut rng).unwrap();

        // Cold without a previous skeleton…
        let cold = refitter
            .refit(RefitRequest {
                source: Arc::new(b.source_train.clone()),
                shots: shots.clone(),
                prev_variant: None,
                seed: 1,
                attempt: 0,
            })
            .unwrap();
        assert_eq!(cold.path, SearchPath::Cold);

        // …warm when seeded with the cold result's variant set.
        let warm = refitter
            .refit(RefitRequest {
                source: Arc::new(b.source_train.clone()),
                shots,
                prev_variant: cold.artifact.variant_features(),
                seed: 2,
                attempt: 0,
            })
            .unwrap();
        assert_eq!(warm.path, SearchPath::Warm);
        assert!(warm.artifact.is_fitted());
    }

    #[test]
    fn registry_refitter_localizes_corrupt_shots() {
        let b = bundle();
        let refitter = RegistryRefitter::new(
            Method::Fs,
            AdapterConfig::quick(),
            GuardConfig::default(),
            &b.source_train,
        )
        .unwrap();
        let mut rng = SeededRng::new(3);
        let shots = few_shot_subset(&b.target_pool, 3, &mut rng).unwrap();
        let mut features = shots.features().clone();
        features.set(2, 1, f64::NAN);
        let corrupt = Dataset::new(features, shots.labels().to_vec(), shots.num_classes()).unwrap();
        let err = refitter
            .refit(RefitRequest {
                source: Arc::new(b.source_train.clone()),
                shots: corrupt,
                prev_variant: None,
                seed: 1,
                attempt: 0,
            })
            .unwrap_err();
        assert!(matches!(err, FitError::CorruptShots { row: 2, col: 1 }));
    }

    #[test]
    fn rollback_publishes_and_resets_breaker() {
        let b = bundle();
        let (server, bytes) = boot(&b);
        let source = Arc::new(b.source_train.clone());
        let mut ctl = DriftController::new(
            "slice-a",
            Arc::clone(&server),
            source,
            bytes.clone(),
            Arc::new(FailingRefitter),
            quick_config(),
        )
        .unwrap();
        ctl.push_window(b.target_pool.clone()).unwrap();
        for _ in 0..2 {
            ctl.observe(b.target_test.features());
        }
        assert_eq!(ctl.breaker(), BreakerState::Open);

        // Garbage bytes never reach the server.
        assert!(matches!(
            ctl.rollback(vec![9, 9, 9]),
            Err(ControllerError::Incumbent(_))
        ));

        ctl.rollback(bytes.clone()).unwrap();
        assert_eq!(ctl.breaker(), BreakerState::Closed);
        assert_eq!(ctl.last_good_artifact(), &bytes[..]);
        let response = server
            .predict("slice-a", b.target_test.features().clone())
            .unwrap();
        assert_eq!(response.artifact_version, 2, "rollback published a version");
    }
}
