//! Epoch-based reclamation for lock-free artifact hot-swap.
//!
//! The serving problem: shard threads must read the current artifact
//! pointer on every request with **no locks in their path**, while a
//! control thread occasionally swaps in a newly fitted artifact and must
//! know when the old one can be freed. Reference counting at read time
//! (cloning an `Arc` behind a lock) would put a contended atomic —
//! or worse, a lock — on every request; hazard pointers would need a
//! per-object protocol. Epoch reclamation is the textbook fit for a
//! read-mostly pointer: readers announce "I am reading, as of epoch E"
//! in a private, cache-padded slot (two uncontended atomic stores per
//! request), and the swapper frees a retired artifact only once every
//! announced epoch has advanced past the artifact's retirement stamp —
//! the epoch has *drained*.
//!
//! # The protocol
//!
//! - One [`EpochPool`] serves a fixed set of reader slots, one per shard
//!   thread (the thread-per-core model means slot count = shard count).
//! - A reader wraps each artifact access in [`EpochPool::pin`]: the guard
//!   stores the current global epoch into the reader's slot, the reader
//!   loads the artifact pointer and serves the request, and dropping the
//!   guard stores [`IDLE`] back.
//! - A swapper publishes the new pointer first, then calls
//!   [`EpochPool::advance`] to bump the global epoch and stamps the old
//!   pointer with the *pre-bump* epoch. Any reader still holding the old
//!   pointer pinned at-or-before that stamp, so the old pointer is free
//!   to reclaim once [`EpochPool::min_active`] exceeds the stamp.
//!
//! All pointer and slot operations are `SeqCst`. The safety argument
//! needs the total order: if a reader's pointer load returned the *old*
//! pointer, that load — and therefore the reader's preceding slot store —
//! ordered before the swapper's pointer store, and therefore before the
//! swapper's subsequent slot scan, which then observes the reader as
//! pinned at an epoch ≤ the retirement stamp and keeps the artifact
//! alive. Stale-but-pinned slots only ever *delay* reclamation, never
//! allow a premature free.

use std::sync::atomic::{AtomicU64, Ordering};

/// Slot value meaning "this reader is not inside a critical section".
pub const IDLE: u64 = u64::MAX;

/// One reader slot, padded to a cache line so two shards announcing
/// epochs never bounce the same line between cores.
#[repr(align(64))]
#[derive(Debug)]
struct Slot {
    epoch: AtomicU64,
}

/// A fixed set of reader slots plus the global epoch counter.
///
/// Constructed once per server with one slot per shard thread; see the
/// [module docs](self) for the protocol.
#[derive(Debug)]
pub struct EpochPool {
    global: AtomicU64,
    slots: Box<[Slot]>,
}

impl EpochPool {
    /// Creates a pool with `readers` slots (floored at 1), all idle.
    pub fn new(readers: usize) -> EpochPool {
        let slots: Vec<Slot> = (0..readers.max(1))
            .map(|_| Slot {
                epoch: AtomicU64::new(IDLE),
            })
            .collect();
        EpochPool {
            global: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of reader slots.
    pub fn readers(&self) -> usize {
        self.slots.len()
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Enters a read-side critical section on `reader`'s slot. Pointers
    /// loaded while the returned guard is alive stay valid until it drops.
    ///
    /// Two uncontended `SeqCst` atomics (one load of the global epoch, one
    /// store to the private slot) — no locks, no shared-line contention
    /// with other readers.
    ///
    /// # Panics
    ///
    /// Panics when `reader >= self.readers()` or the slot is already
    /// pinned (each slot belongs to exactly one thread; re-entrant pinning
    /// is a bug in the caller).
    pub fn pin(&self, reader: usize) -> EpochGuard<'_> {
        let slot = &self.slots[reader];
        let epoch = self.global.load(Ordering::SeqCst);
        let prev = slot.epoch.swap(epoch, Ordering::SeqCst);
        assert_eq!(prev, IDLE, "reader slot {reader} pinned re-entrantly");
        EpochGuard { pool: self, reader }
    }

    /// Bumps the global epoch and returns the **pre-bump** value: the
    /// retirement stamp for a pointer unpublished just before this call.
    pub fn advance(&self) -> u64 {
        self.global.fetch_add(1, Ordering::SeqCst)
    }

    /// The smallest epoch any reader is currently pinned at ([`IDLE`] when
    /// every slot is idle). A pointer stamped `s` is reclaimable once
    /// `min_active() > s`.
    pub fn min_active(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.epoch.load(Ordering::SeqCst))
            .min()
            .unwrap_or(IDLE)
    }
}

/// RAII guard for a read-side critical section; see [`EpochPool::pin`].
#[derive(Debug)]
pub struct EpochGuard<'a> {
    pool: &'a EpochPool,
    reader: usize,
}

impl EpochGuard<'_> {
    /// The reader slot this guard pins.
    pub fn reader(&self) -> usize {
        self.reader
    }
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        self.pool.slots[self.reader]
            .epoch
            .store(IDLE, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_announces_and_unpin_clears() {
        let pool = EpochPool::new(2);
        assert_eq!(pool.min_active(), IDLE);
        let g = pool.pin(0);
        assert_eq!(pool.min_active(), 0);
        drop(g);
        assert_eq!(pool.min_active(), IDLE);
    }

    #[test]
    fn advance_returns_pre_bump_stamp() {
        let pool = EpochPool::new(1);
        assert_eq!(pool.advance(), 0);
        assert_eq!(pool.advance(), 1);
        assert_eq!(pool.epoch(), 2);
    }

    #[test]
    fn pinned_reader_blocks_drain_past_its_epoch() {
        let pool = EpochPool::new(2);
        let g = pool.pin(1); // pinned at epoch 0
        let stamp = pool.advance(); // stamp 0: retired while reader active
        assert_eq!(stamp, 0);
        assert!(pool.min_active() <= stamp, "stamp must be held alive");
        drop(g);
        assert!(pool.min_active() > stamp, "drained after unpin");
    }

    #[test]
    fn readers_floor_at_one() {
        assert_eq!(EpochPool::new(0).readers(), 1);
    }

    #[test]
    #[should_panic(expected = "re-entrantly")]
    fn reentrant_pin_is_rejected() {
        let pool = EpochPool::new(1);
        let _g = pool.pin(0);
        let _g2 = pool.pin(0);
    }
}
