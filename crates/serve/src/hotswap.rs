//! Lock-free artifact hot-swap: an atomic pointer to the current fitted
//! mitigator, with epoch-stamped retirement of replaced versions.
//!
//! A [`SwapCell`] is the per-tenant unit of hot-swap. Readers (shard
//! threads) call [`SwapCell::load`] under an [`EpochGuard`] — one `SeqCst`
//! pointer load, wait-free — and serve the whole request from the returned
//! reference; a request that started on version *n* finishes on version
//! *n* even if a swap lands mid-request. Swappers call [`SwapCell::swap`]:
//! the new artifact is published with one atomic pointer swap (new
//! requests see it immediately, nothing stalls), and the old version is
//! stamped with the current epoch and parked on a retire list. It is
//! freed — by a later swap or an explicit [`SwapCell::reclaim`] — only
//! once every reader has moved past that epoch ([`EpochPool::min_active`]
//! exceeds the stamp), i.e. once the epoch has *drained*.
//!
//! Readers are wait-free and never touch a lock; swappers serialize among
//! themselves on a small mutex that guards only the retire list, which is
//! fine because swaps are rare (once per re-fit) and never block readers.

use crate::epoch::{EpochGuard, EpochPool};
use fsda_core::DriftMitigator;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A published artifact version: the fitted mitigator plus a monotonically
/// increasing version number (1 for the initial artifact).
#[derive(Debug)]
pub struct ArtifactVersion {
    version: u64,
    artifact: Box<dyn DriftMitigator>,
}

impl ArtifactVersion {
    /// The version number of this artifact (1 = initial, +1 per swap).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The fitted mitigator itself.
    pub fn artifact(&self) -> &dyn DriftMitigator {
        self.artifact.as_ref()
    }
}

/// What [`SwapCell::swap`] did: the version numbers involved and how many
/// retired versions were freed / are still waiting for their epoch to
/// drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapOutcome {
    /// Version number the tenant served before the swap.
    pub old_version: u64,
    /// Version number new requests observe after the swap.
    pub new_version: u64,
    /// Retired versions freed by this swap's reclamation pass.
    pub reclaimed: usize,
    /// Retired versions still pinned by in-flight readers.
    pub still_retired: usize,
}

/// The per-tenant hot-swap cell; see the [module docs](self).
#[derive(Debug)]
pub struct SwapCell {
    current: AtomicPtr<ArtifactVersion>,
    latest_version: AtomicU64,
    pool: Arc<EpochPool>,
    /// Retired `(stamp, version)` pairs, oldest first. Touched only by
    /// swappers and `Drop`; readers never acquire this lock.
    retired: Mutex<Vec<(u64, *mut ArtifactVersion)>>,
    swaps: AtomicU64,
}

// SAFETY: the raw pointers in `current` and `retired` own heap allocations
// of `ArtifactVersion`, whose payload (`Box<dyn DriftMitigator>`) is
// `Send + Sync` by trait bound. Shared access to the pointees is read-only
// (`&dyn DriftMitigator`), mutation of the pointers themselves is atomic,
// and deallocation is gated by the epoch protocol.
unsafe impl Send for SwapCell {}
unsafe impl Sync for SwapCell {}

impl SwapCell {
    /// Publishes `artifact` as version 1 of a new cell whose readers pin
    /// through `pool`.
    pub fn new(artifact: Box<dyn DriftMitigator>, pool: Arc<EpochPool>) -> SwapCell {
        let first = Box::into_raw(Box::new(ArtifactVersion {
            version: 1,
            artifact,
        }));
        SwapCell {
            current: AtomicPtr::new(first),
            latest_version: AtomicU64::new(1),
            pool,
            retired: Mutex::new(Vec::new()),
            swaps: AtomicU64::new(0),
        }
    }

    /// The epoch pool this cell's readers pin through.
    pub fn pool(&self) -> &Arc<EpochPool> {
        &self.pool
    }

    /// Loads the current artifact version. Wait-free: one atomic load.
    ///
    /// The returned reference borrows both the cell and the guard: a
    /// concurrent swap retires this version but cannot free it until
    /// `guard` drops, and the borrow checker keeps both the guard and the
    /// cell alive while the reference is in use.
    pub fn load<'g>(&'g self, guard: &'g EpochGuard<'_>) -> &'g ArtifactVersion {
        let _ = guard;
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` was published by `new` or `swap` and is freed only
        // after every epoch at-or-before its retirement stamp has drained.
        // The caller's guard pinned its slot *before* this load (guard
        // construction), so if this load observed a pointer that a swapper
        // has since retired, the swapper's slot scan observes our pin and
        // keeps the allocation alive until the guard drops.
        unsafe { &*ptr }
    }

    /// Version number new requests currently observe.
    pub fn version(&self) -> u64 {
        self.latest_version.load(Ordering::SeqCst)
    }

    /// Number of swaps performed on this cell.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Retired versions not yet freed (their epochs have not drained).
    pub fn retired(&self) -> usize {
        self.retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Atomically publishes `artifact` as the next version. In-flight
    /// requests finish on the version they loaded; requests that load
    /// after this call observe the new version. Runs one reclamation pass
    /// over the retire list before returning.
    pub fn swap(&self, artifact: Box<dyn DriftMitigator>) -> SwapOutcome {
        let mut retired = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        let new_version = self.latest_version.load(Ordering::SeqCst) + 1;
        let next = Box::into_raw(Box::new(ArtifactVersion {
            version: new_version,
            artifact,
        }));
        let old = self.current.swap(next, Ordering::SeqCst);
        self.latest_version.store(new_version, Ordering::SeqCst);
        // Stamp with the pre-bump epoch: every reader that could hold
        // `old` is pinned at-or-before it.
        let stamp = self.pool.advance();
        // SAFETY: `old` came out of `current` and is now unreachable to
        // new readers; we are the only ones retiring it.
        let old_version = unsafe { (*old).version };
        retired.push((stamp, old));
        let reclaimed = Self::drain(&self.pool, &mut retired);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        SwapOutcome {
            old_version,
            new_version,
            reclaimed,
            still_retired: retired.len(),
        }
    }

    /// Frees every retired version whose epoch has drained; returns how
    /// many were freed. Swaps already reclaim opportunistically — this is
    /// for quiescent periods (and tests) that want the retire list empty.
    pub fn reclaim(&self) -> usize {
        let mut retired = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        Self::drain(&self.pool, &mut retired)
    }

    fn drain(pool: &EpochPool, retired: &mut Vec<(u64, *mut ArtifactVersion)>) -> usize {
        let min = pool.min_active();
        let before = retired.len();
        // Oldest-first order means the kept suffix stays sorted by stamp.
        retired.retain(|&(stamp, ptr)| {
            if min > stamp {
                // SAFETY: no reader is pinned at an epoch <= stamp, so no
                // reference into this allocation can exist any more, and
                // the pointer left the retire list exactly once.
                drop(unsafe { Box::from_raw(ptr) });
                false
            } else {
                true
            }
        });
        before - retired.len()
    }
}

impl Drop for SwapCell {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): no loaded references can be
        // alive, because `load` ties them to a shared borrow of the cell.
        // Free current + all retired.
        let current = self.current.load(Ordering::SeqCst);
        // SAFETY: exclusive access; `current` is never null.
        drop(unsafe { Box::from_raw(current) });
        let retired = self
            .retired
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        for (_, ptr) in retired.drain(..) {
            // SAFETY: exclusive access; each retired pointer is owned by
            // the list and freed exactly once.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_core::adapter::AdapterConfig;
    use fsda_core::Method;

    fn unfitted(seed: u64) -> Box<dyn DriftMitigator> {
        // Unfitted mitigators are enough to exercise pointer life cycles.
        Method::SrcOnly.build(&AdapterConfig::quick(), seed)
    }

    #[test]
    fn swap_publishes_new_version_and_reclaims_unpinned() {
        let pool = Arc::new(EpochPool::new(2));
        let cell = SwapCell::new(unfitted(1), pool.clone());
        assert_eq!(cell.version(), 1);
        {
            let g = pool.pin(0);
            assert_eq!(cell.load(&g).version(), 1);
        }
        let outcome = cell.swap(unfitted(2));
        assert_eq!(outcome.old_version, 1);
        assert_eq!(outcome.new_version, 2);
        // No reader pinned: the old version drains inside the swap.
        assert_eq!(outcome.reclaimed, 1);
        assert_eq!(outcome.still_retired, 0);
        let g = pool.pin(1);
        assert_eq!(cell.load(&g).version(), 2);
    }

    #[test]
    fn pinned_reader_defers_reclamation_until_guard_drops() {
        let pool = Arc::new(EpochPool::new(2));
        let cell = SwapCell::new(unfitted(1), pool.clone());
        let g = pool.pin(0);
        let v1 = cell.load(&g);
        let outcome = cell.swap(unfitted(2));
        assert_eq!(outcome.reclaimed, 0, "reader still pinned on v1");
        assert_eq!(outcome.still_retired, 1);
        // The in-flight reference stays valid and still says version 1.
        assert_eq!(v1.version(), 1);
        assert!(!v1.artifact().is_fitted());
        drop(g);
        assert_eq!(cell.reclaim(), 1);
        assert_eq!(cell.retired(), 0);
    }

    #[test]
    fn repeated_swaps_count_and_drop_frees_everything() {
        let pool = Arc::new(EpochPool::new(1));
        let cell = SwapCell::new(unfitted(0), pool.clone());
        let _g = pool.pin(0); // hold one epoch open the whole time
        for i in 0..5 {
            cell.swap(unfitted(i + 1));
        }
        assert_eq!(cell.swaps(), 5);
        assert_eq!(cell.version(), 6);
        assert_eq!(cell.retired(), 5, "all pinned by the open guard");
        // Drop with a non-empty retire list must free every allocation
        // (exercised under the test allocator / miri-style review).
    }
}
