//! `fsda-serve` — the multi-tenant drift-mitigation server.
//!
//! The paper's pipeline (causal feature separation + GAN reconstruction)
//! only pays off in production if freshly re-fitted artifacts can replace
//! stale ones **while traffic keeps flowing** — drift mitigation that
//! requires a serving pause is self-defeating. This crate composes the
//! library layers into that long-running service:
//!
//! - **[`manifest`]** — the tenant manifest: one versioned `FSDA`
//!   artifact per tenant / network slice, each potentially drifting and
//!   re-fitting on its own schedule.
//! - **[`epoch`]** — epoch-based reclamation: readers announce critical
//!   sections in private cache-padded slots; retired artifacts are freed
//!   only when their epoch drains.
//! - **[`hotswap`]** — [`hotswap::SwapCell`], the per-tenant atomic
//!   artifact pointer: wait-free reads, one-atomic-swap publication,
//!   zero request stalls.
//! - **[`controller`]** — [`controller::DriftController`]: the
//!   closed-loop supervisor — detect → re-fit (warm-started) → validate
//!   → hot-swap, with per-attempt deadlines, seeded-jitter retries, and
//!   a circuit breaker that degrades to serve-last-good on repeated
//!   failure.
//! - **[`server`]** — [`server::TenantServer`]: routes batches by tenant
//!   over a thread-per-core shard pool (`fsda_linalg::par::ShardPool`),
//!   applies per-tenant admission control and shard-level backpressure,
//!   serves every batch through the guarded
//!   [`fsda_core::DriftMitigator::try_predict_batch`] entry point, and
//!   emits per-tenant telemetry (`serve.tenant.requests.<tenant>`, swap
//!   counters, queue-depth gauges) through the process-wide
//!   [`fsda_telemetry`] recorder.
//!
//! Operator documentation — manifest format, hot-swap semantics,
//! backpressure knobs, degraded modes, a worked walkthrough — lives in
//! `docs/SERVING.md`; `cargo run -p fsda-serve --release --bin
//! fsda_serve` runs the self-contained demo server.
//!
//! # Fit → persist → serve → hot-swap
//!
//! ```no_run
//! use fsda_core::adapter::AdapterConfig;
//! use fsda_core::{DriftMitigator, Method};
//! use fsda_data::fewshot::few_shot_subset;
//! use fsda_data::synth5gc::Synth5gc;
//! use fsda_linalg::SeededRng;
//! use fsda_serve::server::{ServeConfig, TenantServer};
//!
//! // Offline: fit one pipeline per tenant (normally separate processes).
//! let bundle = Synth5gc::small().generate(42)?;
//! let mut rng = SeededRng::new(7);
//! let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng)?;
//! let mut fit = |seed: u64| -> Result<Box<dyn DriftMitigator>, Box<dyn std::error::Error>> {
//!     let mut m = Method::Fs.build(&AdapterConfig::quick(), seed);
//!     m.fit(&bundle.source_train, &shots)?;
//!     Ok(m)
//! };
//!
//! // Online: boot the server, route batches by tenant, hot-swap.
//! let server = TenantServer::from_artifacts(
//!     vec![("slice-embb".into(), fit(1)?), ("slice-urllc".into(), fit(2)?)],
//!     ServeConfig::default(),
//! )?;
//! let response = server.predict("slice-embb", bundle.target_test.features().clone())?;
//! assert_eq!(response.artifact_version, 1);
//!
//! // Drift detected on slice-embb: re-fit and swap — traffic never stops.
//! server.swap("slice-embb", fit(3)?)?;
//! let response = server.predict("slice-embb", bundle.target_test.features().clone())?;
//! assert_eq!(response.artifact_version, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod controller;
pub mod epoch;
pub mod hotswap;
pub mod manifest;
pub mod server;

pub use controller::{
    BreakerState, ControlOutcome, ControllerConfig, ControllerError, DriftController, Refit,
    RefitRequest, Refitter, RegistryRefitter,
};
pub use hotswap::{ArtifactVersion, SwapCell, SwapOutcome};
pub use manifest::{ManifestError, TenantEntry, TenantManifest};
pub use server::{
    RequestError, ServeConfig, ServerError, TenantResponse, TenantServer, TenantStats, Ticket,
};
