//! The tenant manifest: which tenants exist and where their artifacts
//! live.
//!
//! A manifest is a plain-text file, one `tenant-id = artifact-path` entry
//! per line, with `#` comments and blank lines ignored:
//!
//! ```text
//! # fsda tenant manifest — one network slice per line
//! slice-embb   = artifacts/slice-embb.fsda
//! slice-urllc  = artifacts/slice-urllc.fsda
//! core-5gc     = /var/lib/fsda/core-5gc.fsda
//! ```
//!
//! Relative artifact paths resolve against the manifest file's directory,
//! so a manifest can travel with its artifact directory. Tenant ids are
//! restricted to `[a-z0-9._-]` (lowercase) because they are embedded
//! verbatim in telemetry metric names (`serve.tenant.requests.<tenant>`)
//! and must stay unambiguous in dot-separated metric paths and JSON keys.
//!
//! The manifest is the unit of *fleet configuration*; swapping one
//! tenant's artifact at runtime does not rewrite the manifest — operators
//! update the manifest when the set of tenants changes, and push freshly
//! fitted artifacts through the server's swap entry points (see
//! `docs/SERVING.md`).

use std::path::{Path, PathBuf};

/// One manifest line: a tenant and the artifact it boots from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantEntry {
    /// Tenant id (validated: non-empty, `[a-z0-9._-]` only).
    pub tenant: String,
    /// Artifact path, resolved against the manifest directory when
    /// relative.
    pub path: PathBuf,
}

/// A parsed, validated tenant manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantManifest {
    entries: Vec<TenantEntry>,
}

/// Why a manifest failed to parse or load.
#[derive(Debug)]
pub enum ManifestError {
    /// The manifest file could not be read.
    Io(std::io::Error),
    /// A line was not `tenant = path`.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A tenant id appeared twice.
    DuplicateTenant {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated tenant id.
        tenant: String,
    },
    /// A tenant id contained characters outside `[a-z0-9._-]`.
    InvalidTenantId {
        /// 1-based line number.
        line: usize,
        /// The offending tenant id.
        tenant: String,
    },
    /// The manifest contained no entries.
    Empty,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest read failed: {e}"),
            ManifestError::Syntax { line, message } => {
                write!(f, "manifest line {line}: {message}")
            }
            ManifestError::DuplicateTenant { line, tenant } => {
                write!(f, "manifest line {line}: duplicate tenant \"{tenant}\"")
            }
            ManifestError::InvalidTenantId { line, tenant } => write!(
                f,
                "manifest line {line}: invalid tenant id \"{tenant}\" \
                 (allowed: lowercase letters, digits, '.', '_', '-')"
            ),
            ManifestError::Empty => write!(f, "manifest has no tenant entries"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> Self {
        ManifestError::Io(e)
    }
}

pub(crate) fn valid_tenant_id(id: &str) -> bool {
    !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '.' | '_' | '-'))
}

impl TenantManifest {
    /// Parses manifest text. Relative artifact paths resolve against
    /// `base_dir`.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Syntax`] / [`ManifestError::InvalidTenantId`] /
    /// [`ManifestError::DuplicateTenant`] carry the 1-based line number;
    /// [`ManifestError::Empty`] when no entry survives comment stripping.
    ///
    /// # Example
    ///
    /// ```
    /// use fsda_serve::manifest::TenantManifest;
    ///
    /// let text = "# two slices\nslice-a = a.fsda\nslice-b = sub/b.fsda\n";
    /// let m = TenantManifest::parse(text, "artifacts".as_ref()).unwrap();
    /// assert_eq!(m.entries().len(), 2);
    /// assert_eq!(m.entries()[1].path, std::path::Path::new("artifacts/sub/b.fsda"));
    /// ```
    pub fn parse(text: &str, base_dir: &Path) -> Result<TenantManifest, ManifestError> {
        let mut entries: Vec<TenantEntry> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (tenant, path) = trimmed
                .split_once('=')
                .ok_or_else(|| ManifestError::Syntax {
                    line,
                    message: format!("expected \"tenant = path\", got \"{trimmed}\""),
                })?;
            let tenant = tenant.trim().to_string();
            let path = path.trim();
            if !valid_tenant_id(&tenant) {
                return Err(ManifestError::InvalidTenantId { line, tenant });
            }
            if path.is_empty() {
                return Err(ManifestError::Syntax {
                    line,
                    message: format!("tenant \"{tenant}\" has an empty artifact path"),
                });
            }
            if entries.iter().any(|e| e.tenant == tenant) {
                return Err(ManifestError::DuplicateTenant { line, tenant });
            }
            let path = Path::new(path);
            let path = if path.is_absolute() {
                path.to_path_buf()
            } else {
                base_dir.join(path)
            };
            entries.push(TenantEntry { tenant, path });
        }
        if entries.is_empty() {
            return Err(ManifestError::Empty);
        }
        Ok(TenantManifest { entries })
    }

    /// Reads and parses a manifest file; relative artifact paths resolve
    /// against the file's directory.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Io`] plus everything [`TenantManifest::parse`]
    /// raises.
    pub fn load(path: &Path) -> Result<TenantManifest, ManifestError> {
        let text = std::fs::read_to_string(path)?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        TenantManifest::parse(&text, base)
    }

    /// The validated entries, in manifest order (which also determines
    /// the deterministic tenant → shard assignment).
    pub fn entries(&self) -> &[TenantEntry] {
        &self.entries
    }

    /// Renders the manifest back to its text form (absolute paths as
    /// resolved).
    pub fn render(&self) -> String {
        let mut out = String::from("# fsda tenant manifest\n");
        for e in &self.entries {
            out.push_str(&format!("{} = {}\n", e.tenant, e.path.display()));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_relative_paths() {
        let text = "\n# comment\n  slice-a = a.fsda\nslice-b=/abs/b.fsda\n";
        let m = TenantManifest::parse(text, Path::new("/base")).unwrap();
        assert_eq!(m.entries().len(), 2);
        assert_eq!(m.entries()[0].tenant, "slice-a");
        assert_eq!(m.entries()[0].path, Path::new("/base/a.fsda"));
        assert_eq!(m.entries()[1].path, Path::new("/abs/b.fsda"));
    }

    #[test]
    fn rejects_bad_lines_with_line_numbers() {
        let e = TenantManifest::parse("a.fsda\n", Path::new(".")).unwrap_err();
        assert!(matches!(e, ManifestError::Syntax { line: 1, .. }), "{e}");

        let e = TenantManifest::parse("x = a\nBad Tenant = b\n", Path::new(".")).unwrap_err();
        assert!(
            matches!(e, ManifestError::InvalidTenantId { line: 2, .. }),
            "{e}"
        );

        let e = TenantManifest::parse("x = a\nx = b\n", Path::new(".")).unwrap_err();
        assert!(
            matches!(e, ManifestError::DuplicateTenant { line: 2, .. }),
            "{e}"
        );

        let e = TenantManifest::parse("x =  \n", Path::new(".")).unwrap_err();
        assert!(matches!(e, ManifestError::Syntax { line: 1, .. }), "{e}");

        let e = TenantManifest::parse("# only comments\n", Path::new(".")).unwrap_err();
        assert!(matches!(e, ManifestError::Empty), "{e}");
    }

    #[test]
    fn round_trips_through_render() {
        let text = "a = /x/a.fsda\nb = /y/b.fsda\n";
        let m = TenantManifest::parse(text, Path::new("/")).unwrap();
        let again = TenantManifest::parse(&m.render(), Path::new("/")).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn load_reports_io_errors() {
        let e = TenantManifest::load(Path::new("/nonexistent/manifest.txt")).unwrap_err();
        assert!(matches!(e, ManifestError::Io(_)));
        assert!(e.to_string().contains("manifest read failed"));
    }
}
