//! The multi-tenant serving core: tenant routing, admission control, and
//! hot-swap over a thread-per-core shard pool.
//!
//! A [`TenantServer`] owns one [`ShardPool`] (worker threads with bounded
//! FIFO queues) and one [`SwapCell`] per tenant. Tenants are assigned to
//! shards round-robin in manifest order — a stable, deterministic mapping,
//! so requests for one tenant always execute on the same thread in
//! submission order, and per-tenant queue bounds actually bound that
//! tenant's memory.
//!
//! # Request path (wait-free reads, two bounded queues)
//!
//! [`TenantServer::submit`] performs admission control (per-tenant
//! in-flight cap, then the shard's bounded queue) and enqueues a job; the
//! returned [`Ticket`] resolves to the prediction. On the shard thread the
//! job pins its epoch slot, loads the tenant's current artifact (one
//! atomic load — no lock anywhere in the request path), serves the batch
//! through the guarded [`DriftMitigator::try_predict_batch`] entry point,
//! and unpins. A request that began on artifact version *n* completes on
//! version *n* even if a swap lands mid-request.
//!
//! # Control path
//!
//! [`TenantServer::swap`] / [`TenantServer::swap_from_bytes`] atomically
//! publish a new artifact for one tenant; in-flight requests drain on the
//! old version, which is freed once its epoch drains (see
//! [`crate::hotswap`]). Swapping never pauses request processing.

use crate::epoch::EpochPool;
use crate::hotswap::{SwapCell, SwapOutcome};
use crate::manifest::TenantManifest;
use fsda_core::pipeline::{restore, DriftMitigator};
use fsda_core::{CoreError, GuardConfig, InferPrecision, ServeError};
use fsda_linalg::par::{resolve_threads, ShardPool, SubmitError};
use fsda_linalg::Matrix;
use fsda_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Serving knobs; start from `ServeConfig::default()` and override.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Shard (worker thread) count; `None` = all available cores.
    pub shards: Option<usize>,
    /// Bound of each shard's job queue (all tenants on that shard
    /// combined). A full shard queue rejects with
    /// [`RequestError::ShardQueueFull`].
    pub shard_queue_capacity: usize,
    /// Per-tenant in-flight cap (queued + executing). Exceeding it rejects
    /// with [`RequestError::TenantQueueFull`] before the shard queue is
    /// touched, so one tenant cannot consume a whole shard's budget.
    pub tenant_queue_capacity: usize,
    /// Input guardrails applied to every batch (see
    /// [`fsda_core::InputPolicy`]).
    pub guard: GuardConfig,
    /// Thread count handed to `predict_batch` *inside* a shard. The
    /// default `Some(1)` is deliberate: shards are already thread-per-core,
    /// so nested fan-out would oversubscribe the host.
    pub predict_threads: Option<usize>,
    /// Numeric precision of the served forward passes. The default
    /// [`InferPrecision::F64Exact`] keeps serving bit-identical to the
    /// experiment pipeline; [`InferPrecision::F32Fast`] runs artifacts
    /// with a compiled inference plan on the single-precision kernels for
    /// higher throughput at a small, bounded divergence (see
    /// `docs/KERNELS.md`). Controller validation always measures at
    /// `F64Exact` regardless of this knob.
    pub predict_precision: InferPrecision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: None,
            shard_queue_capacity: 256,
            tenant_queue_capacity: 64,
            guard: GuardConfig::default(),
            predict_threads: Some(1),
            predict_precision: InferPrecision::F64Exact,
        }
    }
}

/// Why the server could not be built or a control operation failed.
#[derive(Debug)]
pub enum ServerError {
    /// Manifest loading/parsing failed.
    Manifest(crate::manifest::ManifestError),
    /// A tenant's artifact file could not be read.
    ArtifactIo {
        /// The tenant whose artifact failed.
        tenant: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A tenant's artifact bytes failed to restore.
    ArtifactRestore {
        /// The tenant whose artifact failed.
        tenant: String,
        /// The underlying restore error.
        source: CoreError,
    },
    /// An artifact that has not been fitted cannot be served.
    UnfittedArtifact {
        /// The offending tenant.
        tenant: String,
    },
    /// A tenant id failed validation (see [`crate::manifest`]).
    InvalidTenantId(String),
    /// The same tenant id was supplied twice.
    DuplicateTenant(String),
    /// The server was constructed with no tenants.
    NoTenants,
    /// Every tenant in the manifest failed to boot — there is nothing to
    /// serve. Individual failures are skippable (see
    /// [`TenantServer::boot_failures`]); a fleet of zero is not.
    AllTenantsFailed {
        /// How many manifest entries failed.
        failed: usize,
    },
    /// The named tenant does not exist.
    UnknownTenant(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Manifest(e) => e.fmt(f),
            ServerError::ArtifactIo { tenant, source } => {
                write!(f, "tenant \"{tenant}\": artifact read failed: {source}")
            }
            ServerError::ArtifactRestore { tenant, source } => {
                write!(f, "tenant \"{tenant}\": artifact restore failed: {source}")
            }
            ServerError::UnfittedArtifact { tenant } => {
                write!(f, "tenant \"{tenant}\": artifact is not fitted")
            }
            ServerError::InvalidTenantId(t) => write!(
                f,
                "invalid tenant id \"{t}\" \
                 (allowed: lowercase letters, digits, '.', '_', '-')"
            ),
            ServerError::DuplicateTenant(t) => write!(f, "duplicate tenant \"{t}\""),
            ServerError::NoTenants => write!(f, "server needs at least one tenant"),
            ServerError::AllTenantsFailed { failed } => {
                write!(f, "all {failed} manifest tenants failed to boot")
            }
            ServerError::UnknownTenant(t) => write!(f, "unknown tenant \"{t}\""),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<crate::manifest::ManifestError> for ServerError {
    fn from(e: crate::manifest::ManifestError) -> Self {
        ServerError::Manifest(e)
    }
}

/// Why a request was not served.
#[derive(Debug)]
pub enum RequestError {
    /// The named tenant does not exist.
    UnknownTenant(String),
    /// The tenant's in-flight cap is reached — per-tenant backpressure;
    /// shed load or retry after in-flight requests drain.
    TenantQueueFull {
        /// The tenant that was throttled.
        tenant: String,
        /// Its configured in-flight cap.
        capacity: usize,
    },
    /// The shard's bounded queue is full — shard-level backpressure.
    ShardQueueFull {
        /// The saturated shard.
        shard: usize,
    },
    /// The server has shut down.
    Closed,
    /// The guarded serving path rejected or failed the batch (corrupt
    /// input under `Reject`, dimension mismatch, non-finite output).
    Serve(ServeError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnknownTenant(t) => write!(f, "unknown tenant \"{t}\""),
            RequestError::TenantQueueFull { tenant, capacity } => {
                write!(f, "tenant \"{tenant}\" queue full ({capacity} in flight)")
            }
            RequestError::ShardQueueFull { shard } => {
                write!(f, "shard {shard} queue full")
            }
            RequestError::Closed => write!(f, "server has shut down"),
            RequestError::Serve(e) => write!(f, "serving failed: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A served prediction plus the artifact version that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantResponse {
    /// Predicted class per input row.
    pub predictions: Vec<usize>,
    /// The artifact version the request executed on (1 = the boot
    /// artifact, +1 per swap). During a hot-swap, responses from both
    /// the outgoing and incoming versions are in flight; this field says
    /// which one produced each response.
    pub artifact_version: u64,
}

/// Handle to an in-flight request; resolve with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<TenantResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the shard thread finishes the request.
    ///
    /// # Errors
    ///
    /// [`RequestError::Serve`] when the guarded path rejected the batch,
    /// [`RequestError::Closed`] if the server shut down underneath the
    /// request.
    pub fn wait(self) -> Result<TenantResponse, RequestError> {
        match self.rx.recv() {
            Ok(Ok(resp)) => Ok(resp),
            Ok(Err(e)) => Err(RequestError::Serve(e)),
            Err(_) => Err(RequestError::Closed),
        }
    }
}

/// A point-in-time snapshot of one tenant's serving state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: String,
    /// The shard its requests execute on.
    pub shard: usize,
    /// Artifact version new requests observe.
    pub artifact_version: u64,
    /// Hot-swaps performed since boot.
    pub swaps: u64,
    /// Replaced artifact versions whose epochs have not drained yet.
    pub retired_artifacts: usize,
    /// Requests queued or executing right now.
    pub queue_depth: usize,
    /// Requests accepted by admission control since boot.
    pub admitted: u64,
    /// Requests rejected by admission control (tenant or shard queue).
    pub rejected: u64,
    /// Requests completed (successfully or with a serve error).
    pub completed: u64,
    /// Completed requests that returned a [`ServeError`].
    pub serve_errors: u64,
}

/// One tenant that failed to boot from the manifest and was skipped so the
/// rest of the fleet could come up.
#[derive(Debug)]
pub struct BootFailure {
    /// The tenant that was skipped.
    pub tenant: String,
    /// Why its artifact could not serve (I/O, restore, or unfitted).
    pub error: ServerError,
}

struct Tenant {
    name: String,
    shard: usize,
    cell: SwapCell,
    depth: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    serve_errors: AtomicU64,
}

/// The multi-tenant drift-mitigation server; see the [module docs](self).
pub struct TenantServer {
    tenants: HashMap<String, Arc<Tenant>>,
    order: Vec<String>,
    pool: ShardPool,
    epochs: Arc<EpochPool>,
    config: ServeConfig,
    boot_failures: Vec<BootFailure>,
}

impl std::fmt::Debug for TenantServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantServer")
            .field("tenants", &self.order)
            .field("shards", &self.pool.shards())
            .finish()
    }
}

impl TenantServer {
    /// Boots a server from already-restored artifacts, one `(tenant,
    /// artifact)` pair per tenant, assigned to shards round-robin in input
    /// order.
    ///
    /// # Errors
    ///
    /// [`ServerError::InvalidTenantId`] / [`ServerError::DuplicateTenant`]
    /// on bad tenant sets, [`ServerError::UnfittedArtifact`] when an
    /// artifact cannot serve, [`ServerError::NoTenants`] on an empty set.
    pub fn from_artifacts(
        artifacts: Vec<(String, Box<dyn DriftMitigator>)>,
        config: ServeConfig,
    ) -> Result<TenantServer, ServerError> {
        if artifacts.is_empty() {
            return Err(ServerError::NoTenants);
        }
        let shards = resolve_threads(config.shards);
        let epochs = Arc::new(EpochPool::new(shards));
        let pool = ShardPool::new(shards, config.shard_queue_capacity);
        let mut tenants: HashMap<String, Arc<Tenant>> = HashMap::new();
        let mut order = Vec::with_capacity(artifacts.len());
        for (idx, (name, artifact)) in artifacts.into_iter().enumerate() {
            if !crate::manifest::valid_tenant_id(&name) {
                return Err(ServerError::InvalidTenantId(name));
            }
            if tenants.contains_key(&name) {
                return Err(ServerError::DuplicateTenant(name));
            }
            if !artifact.is_fitted() {
                return Err(ServerError::UnfittedArtifact { tenant: name });
            }
            let tenant = Arc::new(Tenant {
                name: name.clone(),
                shard: idx % shards,
                cell: SwapCell::new(artifact, Arc::clone(&epochs)),
                depth: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                serve_errors: AtomicU64::new(0),
            });
            order.push(name.clone());
            tenants.insert(name, tenant);
        }
        Ok(TenantServer {
            tenants,
            order,
            pool,
            epochs,
            config,
            boot_failures: Vec::new(),
        })
    }

    /// Boots a server from a [`TenantManifest`]: reads every artifact
    /// file, restores it through the method registry
    /// ([`fsda_core::pipeline::restore`] — the manifest never says which
    /// method produced an artifact), and assigns tenants to shards
    /// round-robin in manifest order.
    ///
    /// A tenant whose artifact cannot be read, restored, or served is
    /// **skipped, not fatal**: one corrupt file must not keep the other
    /// 99 slices of the fleet down. Each skip is recorded (see
    /// [`TenantServer::boot_failures`]) and counted on the
    /// `serve.tenant.boot_failures` / `serve.tenant.boot_failures.<tenant>`
    /// telemetry counters so a partial boot is loud, not silent.
    ///
    /// # Errors
    ///
    /// [`ServerError::AllTenantsFailed`] when *every* entry failed,
    /// plus everything [`TenantServer::from_artifacts`] raises for the
    /// surviving set (duplicate/invalid tenant ids stay fatal — they are
    /// manifest bugs, not artifact damage).
    pub fn from_manifest(
        manifest: &TenantManifest,
        config: ServeConfig,
    ) -> Result<TenantServer, ServerError> {
        let mut artifacts = Vec::with_capacity(manifest.entries().len());
        let mut failures = Vec::new();
        for entry in manifest.entries() {
            let tenant = entry.tenant.clone();
            let outcome = std::fs::read(&entry.path)
                .map_err(|source| ServerError::ArtifactIo {
                    tenant: tenant.clone(),
                    source,
                })
                .and_then(|bytes| {
                    restore(&bytes).map_err(|source| ServerError::ArtifactRestore {
                        tenant: tenant.clone(),
                        source,
                    })
                })
                .and_then(|artifact| {
                    if artifact.is_fitted() {
                        Ok(artifact)
                    } else {
                        Err(ServerError::UnfittedArtifact {
                            tenant: tenant.clone(),
                        })
                    }
                });
            match outcome {
                Ok(artifact) => artifacts.push((tenant, artifact)),
                Err(error) => {
                    telemetry::with_recorder(|rec| {
                        rec.counter("serve.tenant.boot_failures", 1);
                        rec.counter(&format!("serve.tenant.boot_failures.{tenant}"), 1);
                    });
                    failures.push(BootFailure { tenant, error });
                }
            }
        }
        if artifacts.is_empty() {
            return Err(if failures.is_empty() {
                ServerError::NoTenants
            } else {
                ServerError::AllTenantsFailed {
                    failed: failures.len(),
                }
            });
        }
        let mut server = TenantServer::from_artifacts(artifacts, config)?;
        server.boot_failures = failures;
        Ok(server)
    }

    /// Tenants that were skipped during [`TenantServer::from_manifest`]
    /// because their artifact could not be read, restored, or served.
    /// Empty after [`TenantServer::from_artifacts`].
    pub fn boot_failures(&self) -> &[BootFailure] {
        &self.boot_failures
    }

    /// The tenant ids, in boot (manifest) order.
    pub fn tenants(&self) -> &[String] {
        &self.order
    }

    /// Number of shard threads serving requests.
    pub fn shards(&self) -> usize {
        self.pool.shards()
    }

    /// Submits a batch for `tenant` and returns a [`Ticket`] resolving to
    /// the prediction. Non-blocking: admission control either accepts the
    /// request or rejects it with a typed error immediately.
    ///
    /// # Errors
    ///
    /// [`RequestError::UnknownTenant`], [`RequestError::TenantQueueFull`]
    /// (per-tenant cap), [`RequestError::ShardQueueFull`] (shard bound),
    /// [`RequestError::Closed`] after shutdown.
    pub fn submit(&self, tenant: &str, batch: Matrix) -> Result<Ticket, RequestError> {
        let t = self
            .tenants
            .get(tenant)
            .ok_or_else(|| RequestError::UnknownTenant(tenant.to_string()))?;

        // Per-tenant admission: reserve a depth slot or reject.
        let cap = self.config.tenant_queue_capacity;
        if t.depth
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |d| {
                (d < cap).then_some(d + 1)
            })
            .is_err()
        {
            t.rejected.fetch_add(1, Ordering::Relaxed);
            telemetry::counter(&format!("serve.tenant.rejected.{}", t.name), 1);
            return Err(RequestError::TenantQueueFull {
                tenant: t.name.clone(),
                capacity: cap,
            });
        }
        telemetry::gauge(
            &format!("serve.tenant.queue_depth.{}", t.name),
            t.depth.load(Ordering::Acquire) as f64,
        );

        let (tx, rx) = mpsc::sync_channel::<Result<TenantResponse, ServeError>>(1);
        let job_tenant = Arc::clone(t);
        let epochs = Arc::clone(&self.epochs);
        let guard_cfg = self.config.guard;
        let predict_threads = self.config.predict_threads;
        let precision = self.config.predict_precision;
        let job = Box::new(move |shard: usize| {
            let start = telemetry::enabled().then(Instant::now);
            let outcome = {
                // Pin → load → serve → unpin: the request executes on
                // whichever artifact version was current at load time,
                // and that version cannot be freed while we are pinned.
                let guard = epochs.pin(shard);
                let version = job_tenant.cell.load(&guard);
                version
                    .artifact()
                    .try_predict_batch_with(&batch, predict_threads, &guard_cfg, precision)
                    .map(|predictions| TenantResponse {
                        predictions,
                        artifact_version: version.version(),
                    })
            };
            job_tenant.depth.fetch_sub(1, Ordering::AcqRel);
            job_tenant.completed.fetch_add(1, Ordering::Relaxed);
            if outcome.is_err() {
                job_tenant.serve_errors.fetch_add(1, Ordering::Relaxed);
            }
            telemetry::with_recorder(|rec| {
                rec.counter(&format!("serve.tenant.requests.{}", job_tenant.name), 1);
                if outcome.is_err() {
                    rec.counter(&format!("serve.tenant.errors.{}", job_tenant.name), 1);
                }
                rec.gauge(
                    &format!("serve.tenant.queue_depth.{}", job_tenant.name),
                    job_tenant.depth.load(Ordering::Acquire) as f64,
                );
                if let Some(start) = start {
                    rec.duration(
                        &format!("serve.tenant.latency.{}", job_tenant.name),
                        start.elapsed().as_secs_f64(),
                    );
                }
            });
            // A dropped ticket is fine; the request still completed.
            let _ = tx.send(outcome);
        });

        match self.pool.try_submit(t.shard, job) {
            Ok(()) => {
                t.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx })
            }
            Err(e) => {
                t.depth.fetch_sub(1, Ordering::AcqRel);
                t.rejected.fetch_add(1, Ordering::Relaxed);
                telemetry::counter(&format!("serve.tenant.rejected.{}", t.name), 1);
                Err(match e {
                    SubmitError::Full => RequestError::ShardQueueFull { shard: t.shard },
                    SubmitError::Closed => RequestError::Closed,
                })
            }
        }
    }

    /// Submits a batch and blocks for the response: `submit` + `wait`.
    ///
    /// # Errors
    ///
    /// As [`TenantServer::submit`] and [`Ticket::wait`].
    pub fn predict(&self, tenant: &str, batch: Matrix) -> Result<TenantResponse, RequestError> {
        self.submit(tenant, batch)?.wait()
    }

    /// Atomically publishes `artifact` as `tenant`'s next version with
    /// zero request stalls: in-flight requests finish on the old version,
    /// requests loaded after this call observe the new one, and the old
    /// version is freed once its epoch drains.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTenant`]; [`ServerError::UnfittedArtifact`]
    /// when the replacement cannot serve.
    pub fn swap(
        &self,
        tenant: &str,
        artifact: Box<dyn DriftMitigator>,
    ) -> Result<SwapOutcome, ServerError> {
        let t = self
            .tenants
            .get(tenant)
            .ok_or_else(|| ServerError::UnknownTenant(tenant.to_string()))?;
        if !artifact.is_fitted() {
            return Err(ServerError::UnfittedArtifact {
                tenant: tenant.to_string(),
            });
        }
        let outcome = t.cell.swap(artifact);
        telemetry::with_recorder(|rec| {
            rec.counter(&format!("serve.tenant.swaps.{}", t.name), 1);
            rec.gauge(
                &format!("serve.tenant.artifact_version.{}", t.name),
                outcome.new_version as f64,
            );
            rec.gauge(
                &format!("serve.tenant.retired.{}", t.name),
                outcome.still_retired as f64,
            );
        });
        Ok(outcome)
    }

    /// [`TenantServer::swap`] from persisted artifact bytes, restored
    /// through the method registry (the new artifact may even be a
    /// different method than the old one).
    ///
    /// # Errors
    ///
    /// [`ServerError::ArtifactRestore`] on undecodable bytes, plus
    /// everything [`TenantServer::swap`] raises.
    pub fn swap_from_bytes(&self, tenant: &str, bytes: &[u8]) -> Result<SwapOutcome, ServerError> {
        let artifact = restore(bytes).map_err(|source| ServerError::ArtifactRestore {
            tenant: tenant.to_string(),
            source,
        })?;
        self.swap(tenant, artifact)
    }

    /// Frees any of `tenant`'s retired artifact versions whose epochs have
    /// drained; returns how many were freed. Swaps already reclaim
    /// opportunistically — this is for quiescent periods.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTenant`].
    pub fn reclaim(&self, tenant: &str) -> Result<usize, ServerError> {
        let t = self
            .tenants
            .get(tenant)
            .ok_or_else(|| ServerError::UnknownTenant(tenant.to_string()))?;
        Ok(t.cell.reclaim())
    }

    /// A point-in-time snapshot of `tenant`'s serving state.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTenant`].
    pub fn stats(&self, tenant: &str) -> Result<TenantStats, ServerError> {
        let t = self
            .tenants
            .get(tenant)
            .ok_or_else(|| ServerError::UnknownTenant(tenant.to_string()))?;
        Ok(TenantStats {
            tenant: t.name.clone(),
            shard: t.shard,
            artifact_version: t.cell.version(),
            swaps: t.cell.swaps(),
            retired_artifacts: t.cell.retired(),
            queue_depth: t.depth.load(Ordering::Acquire),
            admitted: t.admitted.load(Ordering::Relaxed),
            rejected: t.rejected.load(Ordering::Relaxed),
            completed: t.completed.load(Ordering::Relaxed),
            serve_errors: t.serve_errors.load(Ordering::Relaxed),
        })
    }

    /// Requests queued or executing across all tenants.
    pub fn pending(&self) -> usize {
        self.tenants
            .values()
            .map(|t| t.depth.load(Ordering::Acquire))
            .sum()
    }

    /// Drains every shard queue and joins the worker threads. In-flight
    /// and queued requests complete first; their tickets stay resolvable.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_core::adapter::AdapterConfig;
    use fsda_core::{InputPolicy, Method};
    use fsda_data::fewshot::few_shot_subset;
    use fsda_data::synth5gc::Synth5gc;
    use fsda_linalg::SeededRng;

    fn fitted(seed: u64) -> (Box<dyn DriftMitigator>, Matrix) {
        let bundle = Synth5gc::small().generate(11).expect("bundle");
        let mut rng = SeededRng::new(seed);
        let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).expect("shots");
        let mut m = Method::TarOnly.build(&AdapterConfig::quick(), seed);
        m.fit(&bundle.source_train, &shots).expect("fit");
        let probe = bundle.target_test.features().select_rows(&[0, 1, 2, 3]);
        (m, probe)
    }

    fn two_tenant_server() -> (TenantServer, Matrix) {
        let (a, probe) = fitted(1);
        let (b, _) = fitted(2);
        let server = TenantServer::from_artifacts(
            vec![("alpha".into(), a), ("beta".into(), b)],
            ServeConfig {
                shards: Some(2),
                ..ServeConfig::default()
            },
        )
        .expect("server");
        (server, probe)
    }

    #[test]
    fn routes_by_tenant_and_reports_version() {
        let (server, probe) = two_tenant_server();
        assert_eq!(server.tenants(), ["alpha".to_string(), "beta".into()]);
        let ra = server.predict("alpha", probe.clone()).unwrap();
        let rb = server.predict("beta", probe.clone()).unwrap();
        assert_eq!(ra.artifact_version, 1);
        assert_eq!(rb.artifact_version, 1);
        assert_eq!(ra.predictions.len(), probe.rows());
        let err = server.predict("gamma", probe).unwrap_err();
        assert!(matches!(err, RequestError::UnknownTenant(_)), "{err}");
        let stats = server.stats("alpha").unwrap();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.serve_errors, 0);
        server.shutdown();
    }

    #[test]
    fn swap_changes_served_version_without_drops() {
        let (server, probe) = two_tenant_server();
        let before = server.predict("alpha", probe.clone()).unwrap();
        let (replacement, _) = fitted(3);
        let outcome = server.swap("alpha", replacement).unwrap();
        assert_eq!(outcome.old_version, 1);
        assert_eq!(outcome.new_version, 2);
        let after = server.predict("alpha", probe.clone()).unwrap();
        assert_eq!(after.artifact_version, 2);
        // The other tenant is untouched.
        assert_eq!(server.predict("beta", probe).unwrap().artifact_version, 1);
        assert_eq!(before.artifact_version, 1);
        let stats = server.stats("alpha").unwrap();
        assert_eq!(stats.swaps, 1);
        server.shutdown();
    }

    #[test]
    fn unfitted_artifacts_are_rejected_at_boot_and_swap() {
        let (a, _) = fitted(1);
        let unfitted = Method::SrcOnly.build(&AdapterConfig::quick(), 9);
        let err =
            TenantServer::from_artifacts(vec![("a".into(), unfitted)], ServeConfig::default())
                .unwrap_err();
        assert!(matches!(err, ServerError::UnfittedArtifact { .. }), "{err}");

        let server =
            TenantServer::from_artifacts(vec![("a".into(), a)], ServeConfig::default()).unwrap();
        let unfitted = Method::SrcOnly.build(&AdapterConfig::quick(), 9);
        let err = server.swap("a", unfitted).unwrap_err();
        assert!(matches!(err, ServerError::UnfittedArtifact { .. }), "{err}");
        server.shutdown();
    }

    #[test]
    fn tenant_admission_cap_rejects_with_typed_error() {
        let (a, probe) = fitted(1);
        let server = TenantServer::from_artifacts(
            vec![("a".into(), a)],
            ServeConfig {
                shards: Some(1),
                tenant_queue_capacity: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        // Saturate the single in-flight slot, then keep submitting until
        // admission control pushes back (the worker may drain quickly).
        let mut rejected = false;
        let mut tickets = Vec::new();
        for _ in 0..64 {
            match server.submit("a", probe.clone()) {
                Ok(t) => tickets.push(t),
                Err(RequestError::TenantQueueFull { tenant, capacity }) => {
                    assert_eq!(tenant, "a");
                    assert_eq!(capacity, 1);
                    rejected = true;
                    break;
                }
                Err(other) => panic!("unexpected: {other}"),
            }
        }
        assert!(rejected, "admission cap never fired");
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.stats("a").unwrap();
        assert!(stats.rejected >= 1);
        assert_eq!(stats.admitted, stats.completed);
        server.shutdown();
    }

    #[test]
    fn guarded_path_rejects_corrupt_batches_per_request() {
        let (a, probe) = fitted(1);
        let server = TenantServer::from_artifacts(
            vec![("a".into(), a)],
            ServeConfig {
                guard: GuardConfig::default().with_policy(InputPolicy::Reject),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut corrupt = probe.clone();
        corrupt.set(1, 2, f64::NAN);
        let err = server.predict("a", corrupt).unwrap_err();
        match err {
            RequestError::Serve(ServeError::NonFinite { row: 1, col: 2 }) => {}
            other => panic!("unexpected: {other}"),
        }
        // The server keeps serving clean batches afterwards.
        assert!(server.predict("a", probe).is_ok());
        let stats = server.stats("a").unwrap();
        assert_eq!(stats.serve_errors, 1);
        assert_eq!(stats.completed, 2);
        server.shutdown();
    }

    #[test]
    fn f32_fast_precision_config_serves() {
        let (a, probe) = fitted(1);
        // The reference predictions at the default exact precision.
        let exact = a.predict_batch(&probe, Some(1));
        let server = TenantServer::from_artifacts(
            vec![("a".into(), a)],
            ServeConfig {
                predict_precision: InferPrecision::F32Fast,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let served = server.predict("a", probe).unwrap();
        assert_eq!(served.predictions.len(), exact.len());
        // This fixture's artifact has no fast path, so the hint must fall
        // back to the exact pipeline unchanged.
        assert_eq!(served.predictions, exact);
        server.shutdown();
    }

    #[test]
    fn manifest_boot_round_trips_artifacts_from_disk() {
        let (a, probe) = fitted(1);
        let (b, _) = fitted(2);
        let dir = std::env::temp_dir().join(format!("fsda-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.fsda"), a.to_bytes().unwrap()).unwrap();
        std::fs::write(dir.join("b.fsda"), b.to_bytes().unwrap()).unwrap();
        let manifest_path = dir.join("tenants.manifest");
        std::fs::write(&manifest_path, "alpha = a.fsda\nbeta = b.fsda\n").unwrap();

        let manifest = TenantManifest::load(&manifest_path).unwrap();
        let server = TenantServer::from_manifest(&manifest, ServeConfig::default()).unwrap();
        assert!(server.boot_failures().is_empty());
        let direct = a.predict_batch(&probe, Some(1));
        let served = server.predict("alpha", probe).unwrap();
        assert_eq!(served.predictions, direct, "restore is bit-identical");
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_boot_skips_broken_tenants_and_records_them() {
        let (a, probe) = fitted(1);
        let dir =
            std::env::temp_dir().join(format!("fsda-manifest-skip-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("good.fsda"), a.to_bytes().unwrap()).unwrap();
        std::fs::write(dir.join("corrupt.fsda"), b"not an artifact").unwrap();
        // "missing.fsda" is never written: an I/O failure.
        let manifest_path = dir.join("tenants.manifest");
        std::fs::write(
            &manifest_path,
            "alpha = good.fsda\nbroken = corrupt.fsda\ngone = missing.fsda\n",
        )
        .unwrap();

        let manifest = TenantManifest::load(&manifest_path).unwrap();
        let server = TenantServer::from_manifest(&manifest, ServeConfig::default()).unwrap();
        // The fleet is up with the one healthy tenant...
        assert_eq!(server.tenants(), ["alpha".to_string()]);
        assert!(server.predict("alpha", probe).is_ok());
        // ...and both failures are recorded, with their causes.
        let failures = server.boot_failures();
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].tenant, "broken");
        assert!(matches!(
            failures[0].error,
            ServerError::ArtifactRestore { .. }
        ));
        assert_eq!(failures[1].tenant, "gone");
        assert!(matches!(failures[1].error, ServerError::ArtifactIo { .. }));
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_boot_fails_only_when_every_tenant_fails() {
        let dir =
            std::env::temp_dir().join(format!("fsda-manifest-allfail-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.fsda"), b"garbage").unwrap();
        let manifest_path = dir.join("tenants.manifest");
        std::fs::write(&manifest_path, "a = bad.fsda\nb = nowhere.fsda\n").unwrap();
        let manifest = TenantManifest::load(&manifest_path).unwrap();
        let err = TenantServer::from_manifest(&manifest, ServeConfig::default()).unwrap_err();
        assert!(
            matches!(err, ServerError::AllTenantsFailed { failed: 2 }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
