//! Chaos suite for the closed-loop drift controller: injected fit
//! failures, timeouts, garbage candidates, and corrupt windows across
//! three tenants, asserting the containment invariants of
//! `docs/CONTROL.md`:
//!
//! - **No unvalidated swap ever reaches the server** — every served
//!   response names an artifact version that passed the validation gate.
//! - **Responses are bit-identical to the artifact version they name**,
//!   before, during, and after chaos.
//! - **The breaker degrades and recovers**: repeated failures trip it
//!   open (serve last-good, stop re-fitting), and a healthy half-open
//!   probe closes it again.
//! - **The request path never blocks on a re-fit**: serving continues
//!   while re-fit workers fail, hang, or emit garbage.

use fsda_core::adapter::AdapterConfig;
use fsda_core::drift::DriftConfig;
use fsda_core::{DriftMitigator, FitError, GuardConfig, Method, RetryPolicy};
use fsda_data::faultinject::Fault;
use fsda_data::synth5gc::{Synth5gc, Synth5gcBundle};
use fsda_data::Dataset;
use fsda_serve::controller::{
    BreakerState, ControlOutcome, ControllerConfig, ControllerError, DriftController, Refit,
    RefitRequest, Refitter, RegistryRefitter,
};
use fsda_serve::server::{ServeConfig, TenantServer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TENANTS: [&str; 3] = ["slice-embb", "slice-urllc", "slice-mmtc"];

fn bundle() -> Synth5gcBundle {
    Synth5gc::small().generate(11).expect("bundle")
}

/// A deliberately stale incumbent: fitted on label-rotated source data
/// so any honest re-fit beats it at the validation gate.
fn stale_incumbent(b: &Synth5gcBundle, seed: u64) -> (Box<dyn DriftMitigator>, Vec<u8>) {
    let k = b.source_train.num_classes();
    let rotated = Dataset::new(
        b.source_train.features().clone(),
        b.source_train
            .labels()
            .iter()
            .map(|&y| (y + 1) % k)
            .collect(),
        k,
    )
    .expect("rotated dataset");
    let mut incumbent = Method::SrcOnly.build(&AdapterConfig::quick(), seed);
    incumbent
        .try_fit(&rotated, &rotated, &GuardConfig::default())
        .expect("incumbent fit");
    let bytes = incumbent.to_bytes().expect("incumbent bytes");
    (incumbent, bytes)
}

/// An honest incumbent: TarOnly fitted on clean target shots, strong on
/// the target domain — garbage candidates deterministically lose to it.
fn honest_incumbent(b: &Synth5gcBundle, seed: u64) -> (Box<dyn DriftMitigator>, Vec<u8>) {
    let mut rng = fsda_linalg::SeededRng::new(seed);
    let shots =
        fsda_data::fewshot::few_shot_subset(&b.target_pool, 5, &mut rng).expect("honest shots");
    let mut incumbent = Method::TarOnly.build(&AdapterConfig::quick(), seed);
    incumbent
        .try_fit(&b.source_train, &shots, &GuardConfig::default())
        .expect("incumbent fit");
    let bytes = incumbent.to_bytes().expect("incumbent bytes");
    (incumbent, bytes)
}

/// `slice-embb` and `slice-mmtc` boot stale (any honest re-fit beats
/// them); `slice-urllc` boots honest (garbage re-fits cannot beat it).
fn boot_three_tenants(b: &Synth5gcBundle) -> (Arc<TenantServer>, HashMap<String, Vec<u8>>) {
    let mut artifacts = Vec::new();
    let mut bytes = HashMap::new();
    for (i, t) in TENANTS.iter().enumerate() {
        let (artifact, raw) = if *t == "slice-urllc" {
            honest_incumbent(b, 5 + i as u64)
        } else {
            stale_incumbent(b, 5 + i as u64)
        };
        artifacts.push((t.to_string(), artifact));
        bytes.insert(t.to_string(), raw);
    }
    let server =
        TenantServer::from_artifacts(artifacts, ServeConfig::default()).expect("server boot");
    (Arc::new(server), bytes)
}

fn eager_config(seed: u64) -> ControllerConfig {
    ControllerConfig {
        drift: DriftConfig {
            z_threshold: 0.5,
            ks_threshold: 0.1,
            feature_fraction: 0.01,
            ..DriftConfig::default()
        },
        retry: RetryPolicy::immediate(2),
        attempt_deadline: Duration::from_millis(250),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(1),
        shots_per_class: 3,
        seed,
        ..ControllerConfig::default()
    }
}

fn controller(
    tenant: &str,
    server: &Arc<TenantServer>,
    b: &Synth5gcBundle,
    incumbent: Vec<u8>,
    refitter: Arc<dyn Refitter>,
    seed: u64,
) -> DriftController {
    DriftController::new(
        tenant,
        Arc::clone(server),
        Arc::new(b.source_train.clone()),
        incumbent,
        refitter,
        eager_config(seed),
    )
    .expect("controller boot")
}

/// One scripted behavior per re-fit attempt; after the script drains,
/// everything passes through to the real registry refitter.
#[derive(Clone)]
enum ChaosAction {
    /// Delegate to the real refitter.
    Pass,
    /// Typed fit failure.
    FailFit,
    /// Sleep past the attempt deadline, then fail.
    Hang(Duration),
    /// Produce a real artifact fitted on label-rotated shots: fits fine,
    /// predicts garbage, and must die at the validation gate.
    Garbage,
}

struct ChaosRefitter {
    inner: RegistryRefitter,
    script: Mutex<Vec<ChaosAction>>,
}

impl ChaosRefitter {
    fn new(inner: RegistryRefitter, script: Vec<ChaosAction>) -> Self {
        ChaosRefitter {
            inner,
            script: Mutex::new(script),
        }
    }

    fn next_action(&self) -> ChaosAction {
        let mut script = self.script.lock().expect("script lock");
        if script.is_empty() {
            ChaosAction::Pass
        } else {
            script.remove(0)
        }
    }
}

impl Refitter for ChaosRefitter {
    fn refit(&self, request: RefitRequest) -> Result<Refit, FitError> {
        match self.next_action() {
            ChaosAction::Pass => self.inner.refit(request),
            ChaosAction::FailFit => Err(FitError::Core(fsda_core::CoreError::Model(
                "chaos: injected fit failure".into(),
            ))),
            ChaosAction::Hang(d) => {
                std::thread::sleep(d);
                Err(FitError::Core(fsda_core::CoreError::Model(
                    "chaos: woke up after the deadline".into(),
                )))
            }
            ChaosAction::Garbage => {
                let k = request.shots.num_classes();
                let rotated = Dataset::new(
                    request.shots.features().clone(),
                    request
                        .shots
                        .labels()
                        .iter()
                        .map(|&y| (y + 1) % k)
                        .collect(),
                    k,
                )
                .map_err(|e| FitError::Core(e.into()))?;
                self.inner.refit(RefitRequest {
                    shots: rotated,
                    ..request
                })
            }
        }
    }
}

fn registry(b: &Synth5gcBundle) -> RegistryRefitter {
    RegistryRefitter::new(
        Method::TarOnly,
        AdapterConfig::quick(),
        GuardConfig::default(),
        &b.source_train,
    )
    .expect("registry refitter")
}

/// Serves one probe batch and checks the response is bit-identical to
/// every earlier response that named the same artifact version.
fn probe_and_check(
    server: &Arc<TenantServer>,
    tenant: &str,
    probe: &fsda_linalg::Matrix,
    by_version: &mut HashMap<u64, Vec<usize>>,
) -> u64 {
    let response = server
        .predict(tenant, probe.clone())
        .expect("serving must continue under chaos");
    let prior = by_version
        .entry(response.artifact_version)
        .or_insert_with(|| response.predictions.clone());
    assert_eq!(
        *prior, response.predictions,
        "tenant {tenant}: responses naming artifact version {} diverged",
        response.artifact_version
    );
    response.artifact_version
}

/// The full three-tenant chaos scenario in one deterministic pass.
///
/// - `slice-embb` sees fit failures, then a hang, then heals: its breaker
///   trips open, serving continues on last-good, and a half-open probe
///   recovers it.
/// - `slice-urllc` only ever produces garbage candidates: the validation
///   gate rejects every one, the version never moves, and the breaker
///   eventually opens.
/// - `slice-mmtc` is healthy from the start and swaps immediately.
#[test]
fn three_tenant_chaos_containment() {
    let b = bundle();
    let (server, incumbent_bytes) = boot_three_tenants(&b);
    let probe = b.target_test.features().clone();
    let drift_window = b.target_test.features();

    let mut ctl_embb = controller(
        "slice-embb",
        &server,
        &b,
        incumbent_bytes["slice-embb"].clone(),
        Arc::new(ChaosRefitter::new(
            registry(&b),
            vec![
                ChaosAction::FailFit,
                ChaosAction::FailFit,
                ChaosAction::Hang(Duration::from_millis(2_000)),
                ChaosAction::FailFit,
            ],
        )),
        31,
    );
    let mut ctl_urllc = controller(
        "slice-urllc",
        &server,
        &b,
        incumbent_bytes["slice-urllc"].clone(),
        Arc::new(ChaosRefitter::new(
            registry(&b),
            vec![ChaosAction::Garbage; 16],
        )),
        32,
    );
    let mut ctl_mmtc = controller(
        "slice-mmtc",
        &server,
        &b,
        incumbent_bytes["slice-mmtc"].clone(),
        Arc::new(ChaosRefitter::new(registry(&b), vec![])),
        33,
    );
    for ctl in [&mut ctl_embb, &mut ctl_urllc, &mut ctl_mmtc] {
        ctl.push_window(b.target_pool.clone()).expect("clean pool");
    }

    let mut versions: HashMap<&str, HashMap<u64, Vec<usize>>> =
        TENANTS.iter().map(|&t| (t, HashMap::new())).collect();
    for t in TENANTS {
        let v = probe_and_check(&server, t, &probe, versions.get_mut(t).expect("map"));
        assert_eq!(v, 1, "every tenant boots on version 1");
    }

    // --- slice-embb: two failed cycles trip the breaker (the first
    // cycle burns both scripted FailFits; the second cycle's attempts
    // are the hang — bounded by the deadline — and another failure).
    let deadline_check = Instant::now();
    let first = ctl_embb.observe(drift_window);
    assert!(matches!(&first, ControlOutcome::Failed(f) if !f.breaker_tripped));
    let second = ctl_embb.observe(drift_window);
    match &second {
        ControlOutcome::Failed(f) => {
            assert!(f.breaker_tripped, "second failed cycle must trip");
            assert_eq!(f.timeouts, 1, "the hang must surface as a timeout");
        }
        other => panic!("expected a failed cycle, got {other:?}"),
    }
    assert!(
        deadline_check.elapsed() < Duration::from_millis(2_000),
        "a hung re-fit must be detached at the deadline, not joined"
    );
    assert_eq!(ctl_embb.breaker(), BreakerState::Open);

    // Serving continued on last-good the whole time.
    for t in TENANTS {
        let v = probe_and_check(&server, t, &probe, versions.get_mut(t).expect("map"));
        assert_eq!(v, 1, "no tenant may swap while its re-fits fail");
    }

    // While open, drift does not launch re-fits.
    std::thread::sleep(Duration::from_millis(2));
    let refits_before = ctl_embb.refits();
    // Cooldown has elapsed, so this observe runs the half-open probe
    // with the now-healthy (script-drained) refitter and recovers.
    let probe_outcome = ctl_embb.observe(drift_window);
    match probe_outcome {
        ControlOutcome::Swapped(swap) => {
            assert_eq!(swap.attempts, 1, "half-open runs a single probe attempt");
            assert!(swap.candidate_f1 >= swap.incumbent_f1);
        }
        other => panic!("expected the half-open probe to swap, got {other:?}"),
    }
    assert!(ctl_embb.refits() > refits_before);
    assert_eq!(ctl_embb.breaker(), BreakerState::Closed);
    let v = probe_and_check(
        &server,
        "slice-embb",
        &probe,
        versions.get_mut("slice-embb").expect("map"),
    );
    assert_eq!(v, 2, "recovery publishes exactly one new version");

    // --- slice-urllc: garbage candidates never pass validation.
    let mut rejected_cycles = 0;
    loop {
        match ctl_urllc.observe(drift_window) {
            ControlOutcome::Rejected(r) => {
                rejected_cycles += 1;
                assert!(
                    r.candidate_f1 < r.incumbent_f1 + f64::EPSILON,
                    "a garbage candidate cannot outscore the incumbent"
                );
                if r.breaker_tripped {
                    break;
                }
            }
            other => panic!("expected validation rejection, got {other:?}"),
        }
        assert!(rejected_cycles < 10, "breaker must trip eventually");
    }
    assert_eq!(ctl_urllc.breaker(), BreakerState::Open);
    let v = probe_and_check(
        &server,
        "slice-urllc",
        &probe,
        versions.get_mut("slice-urllc").expect("map"),
    );
    assert_eq!(v, 1, "zero unvalidated swaps: garbage never went live");

    // --- slice-mmtc: healthy path swaps on the first drifted window.
    match ctl_mmtc.observe(drift_window) {
        ControlOutcome::Swapped(swap) => {
            assert!(swap.candidate_f1 >= swap.incumbent_f1);
            assert!(swap.detect_to_swap > Duration::ZERO);
        }
        other => panic!("expected healthy tenant to swap, got {other:?}"),
    }
    let v = probe_and_check(
        &server,
        "slice-mmtc",
        &probe,
        versions.get_mut("slice-mmtc").expect("map"),
    );
    assert_eq!(v, 2);

    // Every response stream stayed bit-identical per named version, and
    // only validated versions (1 = boot, 2 = gated swap) ever appeared.
    for (tenant, by_version) in &versions {
        for version in by_version.keys() {
            assert!(
                *version <= 2,
                "tenant {tenant} served unexplained version {version}"
            );
        }
    }
}

/// Corrupt buffers are rejected at intake with a localized error and
/// never reach the re-fit, across every fault operator that produces
/// non-finite cells.
#[test]
fn corrupt_buffers_are_rejected_at_intake() {
    let b = bundle();
    let (server, incumbent_bytes) = boot_three_tenants(&b);
    let mut ctl = controller(
        "slice-embb",
        &server,
        &b,
        incumbent_bytes["slice-embb"].clone(),
        Arc::new(registry(&b)),
        41,
    );
    for (i, fault) in [
        Fault::NanCells { fraction: 0.02 },
        Fault::InfCells { fraction: 0.02 },
    ]
    .iter()
    .enumerate()
    {
        let corrupt = fault
            .apply(&b.target_pool, 100 + i as u64)
            .expect("fault apply");
        match ctl.push_window(corrupt) {
            Err(ControllerError::CorruptWindow { .. }) => {}
            other => panic!("{} must be rejected at intake, got {other:?}", fault.name()),
        }
    }
    assert_eq!(ctl.buffered_windows(), 0, "corrupt windows never buffer");

    // A corrupt *serving* window is contained the same way, without
    // counting as a control-cycle failure.
    let poisoned = Fault::NanCells { fraction: 0.05 }.apply_to_matrix(b.target_test.features(), 7);
    assert!(matches!(
        ctl.observe(&poisoned),
        ControlOutcome::CorruptWindow(_)
    ));
    assert_eq!(ctl.breaker(), BreakerState::Closed);

    // Clean windows still work after the rejects.
    ctl.push_window(b.target_pool.clone()).expect("clean pool");
    assert!(matches!(
        ctl.observe(b.target_test.features()),
        ControlOutcome::Swapped(_)
    ));
}

/// An empty buffer is a contained failure (typed, breaker-counted), not
/// a panic — the controller can be wired before any labeled window
/// arrives.
#[test]
fn refit_without_buffered_windows_is_contained() {
    let b = bundle();
    let (server, incumbent_bytes) = boot_three_tenants(&b);
    let mut ctl = controller(
        "slice-mmtc",
        &server,
        &b,
        incumbent_bytes["slice-mmtc"].clone(),
        Arc::new(registry(&b)),
        43,
    );
    match ctl.observe(b.target_test.features()) {
        ControlOutcome::Failed(f) => {
            assert!(f.last_error.contains("no buffered target windows"));
        }
        other => panic!("expected a contained failure, got {other:?}"),
    }
    let response = server
        .predict("slice-mmtc", b.target_test.features().clone())
        .expect("still serving");
    assert_eq!(response.artifact_version, 1);
}
