//! Swap-under-load: worker threads hammer the serving path while the
//! control plane hot-swaps every tenant's artifact, repeatedly.
//!
//! The invariants under test are the server's core correctness claims:
//!
//! - **Zero dropped or failed requests.** Hot-swaps never stall, reject,
//!   or error a request; admission control never fires below its caps.
//! - **Version integrity.** Every response is bit-identical to the output
//!   of exactly one artifact version — the one its `artifact_version`
//!   field names. A request that straddles a swap completes on the
//!   version it loaded; no response ever mixes two artifacts.
//! - **Reclamation.** Once traffic quiesces, every retired artifact's
//!   epoch drains and it is freed.
//! - **Accounting.** Server-side stats and the telemetry counters agree
//!   with each other and with what the workers observed.
//!
//! Version parity is the oracle: tenants boot on artifact A (version 1)
//! and swaps alternate B, A, B, … so even versions must predict exactly
//! like B and odd versions exactly like A.

use fsda_core::adapter::AdapterConfig;
use fsda_core::pipeline::{restore, DriftMitigator};
use fsda_core::Method;
use fsda_data::fewshot::few_shot_subset;
use fsda_data::synth5gc::{Synth5gc, Synth5gcBundle};
use fsda_linalg::SeededRng;
use fsda_serve::server::{ServeConfig, TenantServer};
use fsda_telemetry::InMemoryRecorder;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TENANTS: usize = 4;
const SWAPS_PER_TENANT: usize = 12;
const WORKERS: usize = 3;

fn fit(bundle: &Synth5gcBundle, seed: u64) -> Box<dyn DriftMitigator> {
    let mut rng = SeededRng::new(seed);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).expect("shots");
    let mut m = Method::TarOnly.build(&AdapterConfig::quick(), seed);
    m.fit(&bundle.source_train, &shots).expect("fit");
    m
}

#[test]
fn hot_swaps_under_load_never_drop_or_corrupt_requests() {
    let recorder = Arc::new(InMemoryRecorder::new());
    fsda_telemetry::set_recorder(recorder.clone());

    let bundle = Synth5gc::small().generate(21).expect("bundle");
    let rows: Vec<usize> = (0..32).collect();
    let probe = bundle.target_test.features().select_rows(&rows);

    // Per tenant: artifact A boots (version 1), swaps alternate B, A, B, …
    // so version parity determines which artifact must have answered.
    let tenant_names: Vec<String> = (0..TENANTS).map(|i| format!("slice-{i}")).collect();
    let mut boot = Vec::new();
    let mut bytes_a = Vec::new();
    let mut bytes_b = Vec::new();
    let mut expected = Vec::new(); // (A's predictions, B's predictions)
    for (i, name) in tenant_names.iter().enumerate() {
        let a = fit(&bundle, 10 + i as u64);
        let b = fit(&bundle, 100 + i as u64);
        let exp_a = a.predict_batch(&probe, Some(1));
        let exp_b = b.predict_batch(&probe, Some(1));
        assert_ne!(
            exp_a, exp_b,
            "tenant {i}: versions must be distinguishable for the oracle"
        );
        let a_bytes = a.to_bytes().expect("persist A");
        // Boot from persisted bytes — the same restore path a manifest
        // deployment uses.
        boot.push((name.clone(), restore(&a_bytes).expect("restore A")));
        bytes_a.push(a_bytes);
        bytes_b.push(b.to_bytes().expect("persist B"));
        expected.push((exp_a, exp_b));
    }

    let server = TenantServer::from_artifacts(
        boot,
        ServeConfig {
            shards: Some(2),
            ..ServeConfig::default()
        },
    )
    .expect("server");

    let stop = AtomicBool::new(false);
    let (observed, served_total) = std::thread::scope(|s| {
        let server = &server;
        let stop = &stop;
        let probe = &probe;
        let expected = &expected;
        let tenant_names = &tenant_names;
        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                s.spawn(move || {
                    let mut served = 0u64;
                    let mut versions: BTreeSet<u64> = BTreeSet::new();
                    let mut k = w; // stagger tenants across workers
                    while !stop.load(Ordering::Relaxed) {
                        let t = k % TENANTS;
                        k += 1;
                        let resp = server
                            .predict(&tenant_names[t], probe.clone())
                            .expect("request must never fail during a swap");
                        let want = if resp.artifact_version.is_multiple_of(2) {
                            &expected[t].1
                        } else {
                            &expected[t].0
                        };
                        assert_eq!(
                            &resp.predictions, want,
                            "tenant {t}: response does not match artifact v{}",
                            resp.artifact_version
                        );
                        versions.insert(resp.artifact_version);
                        served += 1;
                    }
                    (served, versions)
                })
            })
            .collect();

        // Control plane: swap every tenant SWAPS_PER_TENANT times while
        // the workers hammer. Round r installs B (r even) or A (r odd),
        // producing version r + 2.
        for r in 0..SWAPS_PER_TENANT {
            for (i, name) in tenant_names.iter().enumerate() {
                let bytes = if r.is_multiple_of(2) {
                    &bytes_b[i]
                } else {
                    &bytes_a[i]
                };
                let outcome = server.swap_from_bytes(name, bytes).expect("swap");
                assert_eq!(outcome.old_version, r as u64 + 1);
                assert_eq!(outcome.new_version, r as u64 + 2);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);

        let mut observed: BTreeSet<u64> = BTreeSet::new();
        let mut total = 0u64;
        for w in workers {
            let (served, versions) = w.join().expect("worker");
            total += served;
            observed.extend(versions);
        }
        (observed, total)
    });

    assert!(served_total > 0, "workers must have served requests");
    assert!(
        observed.iter().any(|v| v.is_multiple_of(2)) && observed.iter().any(|v| v % 2 == 1),
        "load must have observed both artifact variants, got versions {observed:?}"
    );

    // Quiesced: stats, reclamation, and telemetry must all reconcile.
    let snapshot = recorder.snapshot_now();
    let mut completed_total = 0u64;
    for name in &tenant_names {
        let reclaimed_now = server.reclaim(name).expect("reclaim");
        let stats = server.stats(name).expect("stats");
        assert_eq!(stats.swaps, SWAPS_PER_TENANT as u64);
        assert_eq!(stats.artifact_version, SWAPS_PER_TENANT as u64 + 1);
        assert_eq!(stats.serve_errors, 0, "{name}: no request may fail");
        assert_eq!(stats.rejected, 0, "{name}: no request may be shed");
        assert_eq!(stats.queue_depth, 0, "{name}: queues must drain");
        assert_eq!(stats.admitted, stats.completed);
        assert_eq!(
            stats.retired_artifacts, 0,
            "{name}: all epochs must drain once quiescent (reclaimed {reclaimed_now})"
        );
        assert_eq!(
            snapshot.counter(&format!("serve.tenant.requests.{name}")),
            stats.completed,
            "{name}: telemetry request counter must match server stats"
        );
        assert_eq!(
            snapshot.counter(&format!("serve.tenant.swaps.{name}")),
            SWAPS_PER_TENANT as u64
        );
        assert_eq!(snapshot.counter(&format!("serve.tenant.errors.{name}")), 0);
        completed_total += stats.completed;
    }
    assert_eq!(
        completed_total, served_total,
        "every worker-observed response must be accounted for"
    );

    server.shutdown();
    fsda_telemetry::clear_recorder();
}
