//! Process-wide recorder slot, free emission functions, and the scoped
//! [`SpanTimer`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

use crate::recorder::Recorder;
use crate::Value;

/// Fast-path switch: emission functions check this with one relaxed load
/// before touching the lock, so uninstrumented runs pay essentially
/// nothing per call site.
static ENABLED: AtomicBool = AtomicBool::new(false);

static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Installs `recorder` as the process-wide telemetry sink. Replaces any
/// previously installed recorder.
pub fn set_recorder(recorder: Arc<dyn Recorder>) {
    let mut slot = RECORDER.write().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the installed recorder; emission becomes a no-op again.
pub fn clear_recorder() {
    ENABLED.store(false, Ordering::SeqCst);
    let mut slot = RECORDER.write().unwrap_or_else(PoisonError::into_inner);
    *slot = None;
}

/// True when a recorder is installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f` against the installed recorder, if any. This is the single
/// funnel every free emission function goes through; call it directly to
/// batch several emissions under one lock acquisition.
pub fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !enabled() {
        return;
    }
    let slot = RECORDER.read().unwrap_or_else(PoisonError::into_inner);
    if let Some(recorder) = slot.as_ref() {
        f(recorder.as_ref());
    }
}

/// Adds `delta` to counter `name` on the installed recorder.
pub fn counter(name: &str, delta: u64) {
    with_recorder(|r| r.counter(name, delta));
}

/// Sets gauge `name` to `value` on the installed recorder.
pub fn gauge(name: &str, value: f64) {
    with_recorder(|r| r.gauge(name, value));
}

/// Records `seconds` into duration histogram `name` on the installed
/// recorder.
pub fn duration(name: &str, seconds: f64) {
    with_recorder(|r| r.duration(name, seconds));
}

/// Emits a structured event on the installed recorder.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    with_recorder(|r| r.event(name, fields));
}

/// A scoped timer: measures from construction to drop and records the
/// elapsed time into the duration histogram `name`.
///
/// When no recorder is installed at construction the timer is disarmed —
/// it never calls `Instant::now()`, so spans in hot paths are free in
/// uninstrumented runs.
///
/// ```
/// # fn predict() {}
/// {
///     let _span = fsda_telemetry::SpanTimer::new("pipeline.predict_batch.seconds");
///     predict();
/// } // duration recorded here
/// ```
#[derive(Debug)]
pub struct SpanTimer<'a> {
    name: &'a str,
    start: Option<Instant>,
}

impl<'a> SpanTimer<'a> {
    /// Starts a span that records into histogram `name` on drop.
    pub fn new(name: &'a str) -> Self {
        let start = if enabled() {
            Some(Instant::now())
        } else {
            None
        };
        SpanTimer { name, start }
    }

    /// Stops the span early without recording anything.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            duration(self.name, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::memory::InMemoryRecorder;

    // The global slot is per-process; this single test exercises the whole
    // install → emit → clear life cycle so no other test has to touch it.
    #[test]
    fn global_install_emit_clear() {
        assert!(!enabled());
        counter("warmup", 1); // no-op: nothing installed

        let recorder = Arc::new(InMemoryRecorder::new());
        set_recorder(recorder.clone());
        assert!(enabled());

        counter("c", 2);
        gauge("g", 3.0);
        duration("d", 0.1);
        event("e", &[("ok", Value::from(true))]);
        {
            let _span = SpanTimer::new("span.seconds");
        }
        {
            let cancelled = SpanTimer::new("span.cancelled");
            cancelled.cancel();
        }

        let snap = recorder.snapshot_now();
        assert_eq!(snap.counter("warmup"), 0);
        assert_eq!(snap.counter("c"), 2);
        assert_eq!(snap.gauge("g"), Some(3.0));
        assert_eq!(snap.histogram("d").unwrap().count, 1);
        assert_eq!(snap.events_count("e"), 1);
        assert_eq!(snap.histogram("span.seconds").unwrap().count, 1);
        assert!(snap.histogram("span.cancelled").is_none());

        clear_recorder();
        assert!(!enabled());
        counter("c", 100);
        assert_eq!(recorder.snapshot_now().counter("c"), 2);

        // A span constructed while disabled stays disarmed even if a
        // recorder appears before it drops.
        let span = SpanTimer::new("late.seconds");
        set_recorder(recorder.clone());
        drop(span);
        assert!(recorder.snapshot_now().histogram("late.seconds").is_none());
        clear_recorder();
    }
}
