//! Streaming JSON-lines event sink.

use std::io::Write;
use std::sync::{Mutex, PoisonError};

use crate::recorder::Recorder;
use crate::Value;

/// A recorder that writes every emission as one JSON object per line.
///
/// This is the structured-events path: unlike [`crate::InMemoryRecorder`]
/// it preserves event fields and emission order, at the cost of a write
/// per call. Point it at a file (or any `Write`) to get a replayable
/// operational log:
///
/// ```text
/// {"kind":"counter","name":"causal.pc.ci_tests","delta":1284}
/// {"kind":"event","name":"nn.watchdog.rollback","fields":{"epoch":12,"loss":null}}
/// ```
///
/// Write errors are deliberately swallowed: telemetry is advisory and
/// must never take the pipeline down.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        let mut w = self
            .out
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = w.flush();
        w
    }

    fn write_line(&self, line: &str) {
        if let Ok(mut w) = self.out.lock() {
            let _ = writeln!(w, "{line}");
        }
    }
}

impl<W: Write + Send> Recorder for JsonLinesSink<W> {
    fn counter(&self, name: &str, delta: u64) {
        self.write_line(&format!(
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}",
            escape(name)
        ));
    }

    fn gauge(&self, name: &str, value: f64) {
        self.write_line(&format!(
            "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            escape(name),
            Value::Float(value).to_json()
        ));
    }

    fn duration(&self, name: &str, seconds: f64) {
        self.write_line(&format!(
            "{{\"kind\":\"duration\",\"name\":\"{}\",\"seconds\":{}}}",
            escape(name),
            Value::Float(seconds).to_json()
        ));
    }

    fn event(&self, name: &str, fields: &[(&str, Value)]) {
        let mut line = format!(
            "{{\"kind\":\"event\",\"name\":\"{}\",\"fields\":{{",
            escape(name)
        );
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            line.push_str(&escape(key));
            line.push_str("\":");
            line.push_str(&value.to_json());
        }
        line.push_str("}}");
        self.write_line(&line);
    }
}

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn lines(sink: JsonLinesSink<Vec<u8>>) -> Vec<String> {
        String::from_utf8(sink.into_inner())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn emits_one_json_object_per_line() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.counter("c", 3);
        sink.gauge("g", 1.5);
        sink.duration("d", 0.25);
        sink.event(
            "e",
            &[
                ("epoch", Value::from(4i64)),
                ("loss", Value::from(f64::NAN)),
            ],
        );
        let lines = lines(sink);
        assert_eq!(
            lines,
            vec![
                r#"{"kind":"counter","name":"c","delta":3}"#,
                r#"{"kind":"gauge","name":"g","value":1.5}"#,
                r#"{"kind":"duration","name":"d","seconds":0.25}"#,
                r#"{"kind":"event","name":"e","fields":{"epoch":4,"loss":null}}"#,
            ]
        );
    }

    #[test]
    fn escapes_control_characters() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.counter("a\"b\\c\nd\u{1}", 1);
        let lines = lines(sink);
        assert_eq!(
            lines[0],
            "{\"kind\":\"counter\",\"name\":\"a\\\"b\\\\c\\nd\\u0001\",\"delta\":1}"
        );
    }

    #[test]
    fn no_snapshot() {
        let sink = JsonLinesSink::new(Vec::new());
        assert!(sink.snapshot().is_none());
    }
}
