//! Dependency-free instrumentation for the fsda pipeline.
//!
//! The workspace is fully offline, so this crate implements the minimal
//! observability surface the serving stack needs with nothing but `std`:
//!
//! * a [`Recorder`] trait with four primitives — monotonically increasing
//!   **counters**, last-value **gauges**, **duration** histograms, and
//!   structured **events**;
//! * three recorders: [`NoopRecorder`] (the default when nothing is
//!   installed — emission short-circuits on a relaxed atomic load),
//!   [`InMemoryRecorder`] (aggregates into a [`Snapshot`] for health
//!   reports and tests), and [`JsonLinesSink`] (streams every emission as
//!   one JSON object per line to any `Write`);
//! * a process-wide recorder slot ([`set_recorder`] / [`clear_recorder`])
//!   with free emission functions ([`counter`], [`gauge`], [`duration`],
//!   [`event`]) and a span-style scoped timer ([`SpanTimer`]) that callers
//!   across the workspace use without threading a handle through every
//!   signature.
//!
//! Instrumented code follows one rule to keep the disabled path free:
//! emit *aggregates*, never per-element values. The causal engines count
//! CI tests locally and report one counter per search; serving counts
//! repaired cells per batch, not per cell. With no recorder installed a
//! call site costs one atomic load and no `Instant::now()`.
//!
//! Metric names are dot-separated lowercase paths, e.g.
//! `pipeline.fit.seconds`, `causal.pc.ci_tests`, `serve.cells_imputed`.
//! Per-method names append the method slug: `pipeline.predict.fs_gan`.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod global;
mod jsonl;
mod memory;
mod recorder;

pub use global::{
    clear_recorder, counter, duration, enabled, event, gauge, set_recorder, with_recorder,
    SpanTimer,
};
pub use jsonl::JsonLinesSink;
pub use memory::{Histogram, InMemoryRecorder, Snapshot, HISTOGRAM_BUCKETS};
pub use recorder::{NoopRecorder, Recorder};

/// A field value attached to a structured [`Recorder::event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer field.
    Int(i64),
    /// Floating-point field. Non-finite values serialize as JSON `null`.
    Float(f64),
    /// String field.
    Str(String),
    /// Boolean field.
    Bool(bool),
}

impl Value {
    /// Renders the value as a JSON fragment.
    pub fn to_json(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) if v.is_finite() => {
                let mut s = v.to_string();
                // `f64::to_string` prints integral floats without a dot;
                // keep the JSON type unambiguous for downstream readers.
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                    s.push_str(".0");
                }
                s
            }
            Value::Float(_) => "null".to_string(),
            Value::Str(v) => format!("\"{}\"", jsonl::escape(v)),
            Value::Bool(v) => v.to_string(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn value_json_fragments() {
        assert_eq!(Value::from(3i64).to_json(), "3");
        assert_eq!(Value::from(2.5f64).to_json(), "2.5");
        assert_eq!(Value::from(2.0f64).to_json(), "2.0");
        assert_eq!(Value::from(f64::NAN).to_json(), "null");
        assert_eq!(Value::from(true).to_json(), "true");
        assert_eq!(Value::from("a\"b").to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn u64_saturates_into_int() {
        assert_eq!(Value::from(u64::MAX), Value::Int(i64::MAX));
    }
}
