//! The aggregating [`InMemoryRecorder`] and its [`Snapshot`] /
//! [`Histogram`] views.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

use crate::recorder::Recorder;
use crate::Value;

/// Number of decade buckets in a [`Histogram`]: bucket `i` holds
/// observations in `[10^(i-9), 10^(i-8))` seconds, so the range spans
/// 1 ns up to ≥ 1000 s with the two end buckets catching the tails.
pub const HISTOGRAM_BUCKETS: usize = 13;

/// A fixed-bucket duration histogram (seconds, decade buckets).
///
/// Tracks count / sum / min / max exactly; the buckets give the shape at
/// order-of-magnitude resolution, which is all a health report needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum: f64,
    /// Smallest observation (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observation (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    /// Decade buckets; see [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one observation. Non-finite or negative values are counted
    /// but excluded from sum/min/max so a stray NaN cannot poison the
    /// aggregate.
    pub fn record(&mut self, seconds: f64) {
        self.count += 1;
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        self.sum += seconds;
        self.min = self.min.min(seconds);
        self.max = self.max.max(seconds);
        self.buckets[bucket_index(seconds)] += 1;
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

fn bucket_index(seconds: f64) -> usize {
    if seconds <= 0.0 {
        return 0;
    }
    let decade = seconds.log10().floor() as i64 + 9; // 1 ns → bucket 0
    decade.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// An aggregated, point-in-time view of everything a recorder has seen.
///
/// Maps are `BTreeMap`s so rendering is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Last gauge value by name.
    pub gauges: BTreeMap<String, f64>,
    /// Duration histograms by name.
    pub durations: BTreeMap<String, Histogram>,
    /// Event occurrence counts by name (fields are not aggregated; use
    /// [`crate::JsonLinesSink`] to capture full event payloads).
    pub events: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Counter total, 0 when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Last gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Duration histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.durations.get(name)
    }

    /// Number of times the event `name` fired.
    pub fn events_count(&self, name: &str) -> u64 {
        self.events.get(name).copied().unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.durations.is_empty()
            && self.events.is_empty()
    }

    /// Renders a deterministic plain-text report, one metric per line,
    /// suitable for appending to a health report or printing from an
    /// example binary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter  {name} = {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge    {name} = {v:.6}");
        }
        for (name, h) in &self.durations {
            let _ = writeln!(
                out,
                "duration {name}: count={} mean={} min={} max={}",
                h.count,
                format_seconds(h.mean()),
                format_seconds(if h.count == 0 { 0.0 } else { h.min }),
                format_seconds(if h.count == 0 { 0.0 } else { h.max }),
            );
        }
        for (name, v) in &self.events {
            let _ = writeln!(out, "event    {name} x{v}");
        }
        out
    }

    /// Merges another snapshot into this one (counters and events add,
    /// gauges take the other's value, histograms merge).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.durations {
            self.durations.entry(k.clone()).or_default().merge(h);
        }
        for (k, v) in &other.events {
            *self.events.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Formats a duration in seconds with an adaptive unit so sub-millisecond
/// stage timings stay readable next to multi-second fits.
fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

/// A thread-safe recorder that aggregates everything into a [`Snapshot`].
///
/// One mutex guards the whole snapshot; instrumented code emits aggregates
/// (per batch / per search, never per element), so contention is
/// negligible and the lock hold time is a map update.
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    inner: Mutex<Snapshot>,
}

impl InMemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Snapshot> {
        // Telemetry must keep working even if a panic unwound through an
        // emission elsewhere; the aggregate state is always consistent.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the current aggregate without clearing it.
    pub fn snapshot_now(&self) -> Snapshot {
        self.lock().clone()
    }

    /// Returns the current aggregate and resets the recorder to empty.
    pub fn take(&self) -> Snapshot {
        std::mem::take(&mut *self.lock())
    }
}

impl Recorder for InMemoryRecorder {
    fn counter(&self, name: &str, delta: u64) {
        let mut s = self.lock();
        match s.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                s.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut s = self.lock();
        match s.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                s.gauges.insert(name.to_string(), value);
            }
        }
    }

    fn duration(&self, name: &str, seconds: f64) {
        let mut s = self.lock();
        match s.durations.get_mut(name) {
            Some(h) => h.record(seconds),
            None => {
                let mut h = Histogram::default();
                h.record(seconds);
                s.durations.insert(name.to_string(), h);
            }
        }
    }

    fn event(&self, name: &str, _fields: &[(&str, Value)]) {
        let mut s = self.lock();
        match s.events.get_mut(name) {
            Some(v) => *v += 1,
            None => {
                s.events.insert(name.to_string(), 1);
            }
        }
    }

    fn snapshot(&self) -> Option<Snapshot> {
        Some(self.snapshot_now())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_all_primitives() {
        let r = InMemoryRecorder::new();
        r.counter("c", 2);
        r.counter("c", 3);
        r.gauge("g", 1.0);
        r.gauge("g", 7.5);
        r.duration("d", 0.010);
        r.duration("d", 0.030);
        r.event("e", &[]);
        r.event("e", &[("k", Value::from(1i64))]);

        let s = r.snapshot().unwrap();
        assert_eq!(s.counter("c"), 5);
        assert_eq!(s.gauge("g"), Some(7.5));
        let h = s.histogram("d").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 0.040).abs() < 1e-12);
        assert!((h.mean() - 0.020).abs() < 1e-12);
        assert!((h.min - 0.010).abs() < 1e-12);
        assert!((h.max - 0.030).abs() < 1e-12);
        assert_eq!(s.events_count("e"), 2);
        assert_eq!(s.counter("missing"), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn take_resets() {
        let r = InMemoryRecorder::new();
        r.counter("c", 1);
        assert_eq!(r.take().counter("c"), 1);
        assert!(r.snapshot_now().is_empty());
    }

    #[test]
    fn histogram_buckets_by_decade() {
        let mut h = Histogram::default();
        h.record(2e-9); // bucket 0
        h.record(5e-4); // bucket 5 (1e-4..1e-3)
        h.record(3.0); // bucket 9 (1..10)
        h.record(1e9); // clamped to last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[5], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.count, 4);
    }

    #[test]
    fn histogram_ignores_nan_in_aggregates() {
        let mut h = Histogram::default();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(0.5);
        assert_eq!(h.count, 3);
        assert!((h.sum - 0.5).abs() < 1e-12);
        assert!((h.min - 0.5).abs() < 1e-12);
        assert!((h.max - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_is_deterministic_and_readable() {
        let r = InMemoryRecorder::new();
        r.counter("b.count", 4);
        r.counter("a.count", 1);
        r.duration("z.seconds", 0.5);
        let text = r.snapshot_now().render();
        let a = text.find("a.count").unwrap();
        let b = text.find("b.count").unwrap();
        assert!(a < b, "BTreeMap order: {text}");
        assert!(text.contains("count=1 mean=500.000ms"), "{text}");
    }

    #[test]
    fn merge_combines_snapshots() {
        let a = InMemoryRecorder::new();
        a.counter("c", 1);
        a.duration("d", 1.0);
        let b = InMemoryRecorder::new();
        b.counter("c", 2);
        b.duration("d", 3.0);
        b.gauge("g", 9.0);
        let mut s = a.snapshot_now();
        s.merge(&b.snapshot_now());
        assert_eq!(s.counter("c"), 3);
        assert_eq!(s.histogram("d").unwrap().count, 2);
        assert_eq!(s.gauge("g"), Some(9.0));
    }
}
