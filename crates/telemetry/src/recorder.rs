//! The [`Recorder`] trait and the always-off [`NoopRecorder`].

use crate::memory::Snapshot;
use crate::Value;

/// Sink for telemetry emissions.
///
/// Implementations must be cheap and must never panic: instrumentation is
/// advisory, and a broken recorder must not take the pipeline down with
/// it. All methods take `&self`; recorders own their interior mutability
/// (the in-memory recorder uses a mutex, the JSON-lines sink a locked
/// writer).
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the monotonically increasing counter `name`.
    fn counter(&self, name: &str, delta: u64);

    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Records one observation of `seconds` into the duration histogram
    /// `name`.
    fn duration(&self, name: &str, seconds: f64);

    /// Records a structured event with the given fields.
    fn event(&self, name: &str, fields: &[(&str, Value)]);

    /// Returns an aggregated view of everything recorded so far, if this
    /// recorder aggregates at all. Streaming sinks return `None`.
    fn snapshot(&self) -> Option<Snapshot> {
        None
    }
}

/// A recorder that discards everything.
///
/// Useful as an explicit stand-in where a `&dyn Recorder` is required;
/// when *no* recorder is installed globally the emission functions
/// short-circuit before any dispatch, so installing `NoopRecorder` is
/// never necessary for performance.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: f64) {}
    fn duration(&self, _name: &str, _seconds: f64) {}
    fn event(&self, _name: &str, _fields: &[(&str, Value)]) {}
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn noop_discards_and_has_no_snapshot() {
        let r = NoopRecorder;
        r.counter("a", 1);
        r.gauge("b", 2.0);
        r.duration("c", 0.5);
        r.event("d", &[("k", Value::from(1i64))]);
        assert!(r.snapshot().is_none());
    }
}
