//! Bring-your-own-data workflow: load source/target CSV files, run the
//! FS+GAN pipeline, and write predictions back out. This is the path a
//! network operator with real metric exports would take.
//!
//! Run with:
//! `cargo run --release --example custom_csv -- source.csv shots.csv test.csv`
//!
//! Without arguments the example writes itself a demo pair of CSV files
//! first (from the synthetic 5GIPC generator), so it is runnable anywhere.

use fsda::core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda::core::drift::{DriftConfig, DriftDetector};
use fsda::data::csv::{read_csv, write_csv};
use fsda::data::fewshot::few_shot_subset;
use fsda::data::synth5gipc::Synth5gipc;
use fsda::linalg::SeededRng;
use fsda::models::ClassifierKind;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let (source_path, shots_path, test_path) = if args.len() >= 4 {
        (args[1].clone(), args[2].clone(), args[3].clone())
    } else {
        println!("(no CSV paths given; writing demo files to ./target/fsda-demo)\n");
        demo_files()?
    };

    let source = read_csv(File::open(&source_path)?)?;
    let shots = read_csv(File::open(&shots_path)?)?;
    let test = read_csv(File::open(&test_path)?)?;
    println!(
        "source: {} x {}, shots: {}, test: {}",
        source.len(),
        source.num_features(),
        shots.len(),
        test.len()
    );

    // Is the operational window even drifted? If not, the source model can
    // be used as-is — adaptation is on demand.
    let detector = DriftDetector::fit(source.features(), DriftConfig::default());
    let report = detector.score(test.features());
    println!(
        "drift check: {} of {} features drifted -> re-adapt = {}",
        report.drifted_features.len(),
        source.num_features(),
        report.readapt
    );

    let config = AdapterConfig {
        classifier: ClassifierKind::Xgb,
        budget: Budget::quick(),
        ..AdapterConfig::default()
    };
    let adapter = FsGanAdapter::fit(&source, &shots, &config, 7)?;
    println!(
        "FS found {} variant / {} invariant features",
        adapter.separation().variant().len(),
        adapter.separation().invariant().len()
    );
    let pred = adapter.predict(test.features());

    let out_path = Path::new(&test_path).with_extension("predictions.csv");
    let mut out = File::create(&out_path)?;
    writeln!(out, "row,prediction")?;
    for (i, p) in pred.iter().enumerate() {
        writeln!(out, "{i},{p}")?;
    }
    println!("wrote {} predictions to {}", pred.len(), out_path.display());

    // If ground truth was present in the test CSV, report F1 as a courtesy.
    let f1 = fsda::models::metrics::macro_f1(test.labels(), &pred, test.num_classes());
    println!("macro-F1 vs labels in the test file: {:.1}", 100.0 * f1);
    Ok(())
}

/// Writes a demo source/shots/test CSV triple and returns their paths.
fn demo_files() -> Result<(String, String, String), Box<dyn std::error::Error>> {
    let dir = Path::new("target/fsda-demo");
    std::fs::create_dir_all(dir)?;
    let bundle = Synth5gipc::small().generate(11)?;
    let mut rng = SeededRng::new(12);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng)?;
    let paths = (
        dir.join("source.csv"),
        dir.join("shots.csv"),
        dir.join("test.csv"),
    );
    write_csv(&bundle.source_train, File::create(&paths.0)?)?;
    write_csv(&shots, File::create(&paths.1)?)?;
    write_csv(&bundle.target_test, File::create(&paths.2)?)?;
    Ok((
        paths.0.to_string_lossy().into_owned(),
        paths.1.to_string_lossy().into_owned(),
        paths.2.to_string_lossy().into_owned(),
    ))
}
