//! Evolving-drift scenario (§VI-F / Table III), end to end through the
//! serving plane: the network-management model is trained **once** on the
//! source domain and boots a [`fsda::serve::TenantServer`] as artifact
//! version 1. As the data distribution evolves through two successive
//! target domains, the drift monitor triggers a re-fit of the lightweight
//! FS+GAN front-end, and each re-fit is **hot-swapped** into the running
//! server — the classifier is never retrained and traffic never stops.
//!
//! All serving goes through the tenant-routing path (guarded requests,
//! per-tenant accounting, telemetry); the example hand-rolls nothing. The
//! run ends with the server's per-tenant stats and the aggregated
//! telemetry snapshot: causal-search effort, GAN training time, and the
//! per-request latency histogram, in one exportable block.
//!
//! Run with: `cargo run --release --example drift_monitor`

use fsda::core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda::core::drift::{DriftConfig, DriftDetector};
use fsda::core::telemetry::{self, InMemoryRecorder};
use fsda::core::Method;
use fsda::data::fewshot::few_shot_indices;
use fsda::data::synth5gipc::{Synth5gipc, NUM_GROUPS};
use fsda::linalg::{Matrix, SeededRng};
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;
use fsda::serve::server::{ServeConfig, TenantServer};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Streams `x` through the server in serving-sized windows and scores the
/// predictions — every row goes through the guarded tenant-routing path.
fn serve_f1(
    server: &TenantServer,
    x: &Matrix,
    labels: &[usize],
) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let mut preds = Vec::with_capacity(x.rows());
    let mut version = 0;
    for start in (0..x.rows()).step_by(64) {
        let idx: Vec<usize> = (start..(start + 64).min(x.rows())).collect();
        let resp = server.predict("nm-model", x.select_rows(&idx))?;
        preds.extend(resp.predictions);
        version = resp.artifact_version;
    }
    Ok((macro_f1(labels, &preds, 2), version))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== drift monitor: one classifier, two successive drifts, zero downtime ==\n");
    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());
    let bundle = Synth5gipc::small().generate_three_domain(5)?;

    let mut rng = SeededRng::new(9);
    let k = 5;
    let cfg = AdapterConfig {
        classifier: ClassifierKind::Xgb,
        budget: Budget::quick(),
        ..AdapterConfig::default()
    };

    // The long-lived network-management model, trained once on source,
    // boots the serving plane as artifact version 1 — no mitigation yet.
    let idx1 = few_shot_indices(&bundle.target1_pool_groups, NUM_GROUPS, k, &mut rng)?;
    let shots1 = bundle.target1_pool.subset(&idx1);
    let mut src_only = Method::SrcOnly.build(&cfg, 20);
    src_only.fit(&bundle.source_train, &shots1)?;
    let server =
        TenantServer::from_artifacts(vec![("nm-model".into(), src_only)], ServeConfig::default())?;
    println!(
        "serving boots on the source-trained model (artifact v1, {} shard(s))\n",
        server.shards()
    );

    // The monitor watches incoming (unlabeled) windows and tells us when
    // re-adaptation is warranted — §VI-F: "FS+GAN only needs to be updated
    // when the data distribution undergoes significant changes".
    let detector = DriftDetector::fit(bundle.source_train.features(), DriftConfig::default());
    let report = detector.score(bundle.target1_test.features());
    println!(
        "drift monitor on Target_1 window: {} features drifted -> re-adapt = {}",
        report.drifted_features.len(),
        report.readapt
    );
    let (f1, v) = serve_f1(
        &server,
        bundle.target1_test.features(),
        bundle.target1_test.labels(),
    )?;
    println!(
        "  Target_1 served on v{v} (unmitigated): F1 {:.1}",
        100.0 * f1
    );

    // Drift #1: fit FS+GAN_1 from k shots of Target_1 and hot-swap it in.
    // Fitting happens off the serving path; the swap is one atomic publish.
    let adapter1 = FsGanAdapter::fit(&bundle.source_train, &shots1, &cfg, 21)?;
    let variant1: BTreeSet<usize> = adapter1.separation().variant().iter().copied().collect();
    let outcome = server.swap("nm-model", Box::new(adapter1))?;
    println!(
        "  re-fit FS+GAN_1 and hot-swapped v{} -> v{}",
        outcome.old_version, outcome.new_version
    );
    let (f1, v) = serve_f1(
        &server,
        bundle.target1_test.features(),
        bundle.target1_test.labels(),
    )?;
    println!(
        "  Target_1 served on v{v} (FS+GAN_1):    F1 {:.1}\n",
        100.0 * f1
    );

    // Drift #2 appears later: re-run only FS + GAN (cheap), not the model,
    // and swap again — the running server never paused.
    let report = detector.score(bundle.target2_test.features());
    println!(
        "drift monitor on Target_2 window: {} features drifted -> re-adapt = {}",
        report.drifted_features.len(),
        report.readapt
    );
    let idx2 = few_shot_indices(&bundle.target2_pool_groups, NUM_GROUPS, k, &mut rng)?;
    let shots2 = bundle.target2_pool.subset(&idx2);
    let adapter2 = FsGanAdapter::fit(&bundle.source_train, &shots2, &cfg, 22)?;
    let variant2: BTreeSet<usize> = adapter2.separation().variant().iter().copied().collect();
    let outcome = server.swap("nm-model", Box::new(adapter2))?;
    println!(
        "  re-fit FS+GAN_2 and hot-swapped v{} -> v{}",
        outcome.old_version, outcome.new_version
    );
    let (f1, v) = serve_f1(
        &server,
        bundle.target2_test.features(),
        bundle.target2_test.labels(),
    )?;
    println!(
        "  Target_2 served on v{v} (FS+GAN_2):    F1 {:.1}",
        100.0 * f1
    );

    let shared = variant1.intersection(&variant2).count();
    println!(
        "\nvariant features: adapter1 {}, adapter2 {}, shared {} \
         (paper: mostly common across targets, so cross-use stays competitive)",
        variant1.len(),
        variant2.len(),
        shared
    );

    // Everything the run cost, in one exportable block: the server's
    // per-tenant accounting plus causal CI-test counts and stage timings,
    // GAN fit seconds, NN epochs, and per-request serving latencies.
    let stats = server.stats("nm-model")?;
    println!(
        "\ntenant \"{}\": artifact v{}, {} swap(s), {} requests served, {} error(s)",
        stats.tenant, stats.artifact_version, stats.swaps, stats.completed, stats.serve_errors
    );
    server.shutdown();
    println!("\n== telemetry snapshot ==");
    print!("{}", recorder.snapshot_now().render());
    telemetry::clear_recorder();
    Ok(())
}
