//! Evolving-drift scenario (§VI-F / Table III): the network-management
//! model is trained **once** on the source domain; as the data distribution
//! evolves through two successive target domains, only the lightweight
//! FS+GAN front-end is re-fit — the classifier is never touched.
//!
//! The monitor runs with the aggregating telemetry recorder installed:
//! each re-adaptation's causal-search effort (CI-test counts, per-stage
//! timings), GAN training time, and epoch/watchdog activity lands in one
//! snapshot, printed at the end — what a long-lived monitor would export.
//!
//! Run with: `cargo run --release --example drift_monitor`

use fsda::core::adapter::{build_classifier, AdapterConfig, Budget, FsGanAdapter};
use fsda::core::drift::{DriftConfig, DriftDetector};
use fsda::core::telemetry::{self, InMemoryRecorder};
use fsda::data::fewshot::few_shot_indices;
use fsda::data::normalize::{NormKind, Normalizer};
use fsda::data::synth5gipc::{Synth5gipc, NUM_GROUPS};
use fsda::linalg::SeededRng;
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== drift monitor: one classifier, two successive drifts ==\n");
    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());
    let bundle = Synth5gipc::small().generate_three_domain(5)?;

    // The long-lived network-management model: trained once on source.
    let norm = Normalizer::fit(bundle.source_train.features(), NormKind::MinMaxSymmetric);
    let mut classifier = build_classifier(ClassifierKind::Xgb, 1, &Budget::quick());
    classifier.fit(
        &norm.transform(bundle.source_train.features()),
        bundle.source_train.labels(),
        2,
    )?;
    println!(
        "classifier trained once on {} source samples\n",
        bundle.source_train.len()
    );

    let mut rng = SeededRng::new(9);
    let k = 5;

    // The monitor watches incoming (unlabeled) windows and tells us when
    // re-adaptation is warranted — §VI-F: "FS+GAN only needs to be updated
    // when the data distribution undergoes significant changes".
    let detector = DriftDetector::fit(bundle.source_train.features(), DriftConfig::default());
    let report = detector.score(bundle.target1_test.features());
    println!(
        "drift monitor on Target_1 window: {} features drifted -> re-adapt = {}",
        report.drifted_features.len(),
        report.readapt
    );

    // Drift #1 appears: fit FS+GAN_1 from k shots of Target_1.
    let idx1 = few_shot_indices(&bundle.target1_pool_groups, NUM_GROUPS, k, &mut rng)?;
    let shots1 = bundle.target1_pool.subset(&idx1);
    let cfg = AdapterConfig {
        classifier: ClassifierKind::Xgb,
        budget: Budget::quick(),
        ..AdapterConfig::default()
    };
    let adapter1 = FsGanAdapter::fit(&bundle.source_train, &shots1, &cfg, 21)?;

    // Drift #2 appears later: re-run only FS + GAN (cheap), not the model.
    let idx2 = few_shot_indices(&bundle.target2_pool_groups, NUM_GROUPS, k, &mut rng)?;
    let shots2 = bundle.target2_pool.subset(&idx2);
    let adapter2 = FsGanAdapter::fit(&bundle.source_train, &shots2, &cfg, 22)?;

    println!(
        "{:<12} {:>14} {:>14}",
        "adapter", "on Target_1", "on Target_2"
    );
    for (name, adapter) in [("FS+GAN_1", &adapter1), ("FS+GAN_2", &adapter2)] {
        let f1_t1 = macro_f1(
            bundle.target1_test.labels(),
            &adapter.predict(bundle.target1_test.features()),
            2,
        );
        let f1_t2 = macro_f1(
            bundle.target2_test.labels(),
            &adapter.predict(bundle.target2_test.features()),
            2,
        );
        println!(
            "{:<12} {:>14.1} {:>14.1}",
            name,
            100.0 * f1_t1,
            100.0 * f1_t2
        );
    }

    let v1: std::collections::BTreeSet<_> =
        adapter1.separation().variant().iter().copied().collect();
    let v2: std::collections::BTreeSet<_> =
        adapter2.separation().variant().iter().copied().collect();
    let shared = v1.intersection(&v2).count();
    println!(
        "\nvariant features: adapter1 {}, adapter2 {}, shared {} \
         (paper: mostly common across targets, so cross-use stays competitive)",
        v1.len(),
        v2.len(),
        shared
    );

    // Everything the two re-adaptations cost, in one exportable block:
    // causal CI-test counts and stage timings, GAN fit seconds, NN
    // epochs, and any watchdog rollbacks that fired along the way.
    println!("\n== telemetry snapshot ==");
    print!("{}", recorder.snapshot_now().render());
    telemetry::clear_recorder();
    Ok(())
}
