//! Evolving-drift scenario (§VI-F / Table III), end to end through the
//! serving plane: the network-management model is trained **once** on the
//! source domain and boots a [`fsda::serve::TenantServer`] as artifact
//! version 1. The drifted stream comes from a **drift scenario spec**
//! (`fsda::data::scenario`) with a gradual schedule: each window
//! interpolates the scenario's interventions a step further, so the
//! distribution slides from source-like to fully drifted instead of
//! jumping. The drift monitor watches every (unlabeled) window; whenever
//! a window leaves the source envelope, the lightweight FS+GAN front-end
//! is re-fit from a few labeled shots of that window and **hot-swapped**
//! into the running server — the classifier is never retrained and
//! traffic never stops. A second tenant serves the same stream on the
//! never-adapted source model, so every window reports what mitigation
//! bought.
//!
//! All serving goes through the tenant-routing path (guarded requests,
//! per-tenant accounting, telemetry); the example hand-rolls nothing. The
//! run ends with the server's per-tenant stats and the aggregated
//! telemetry snapshot: causal-search effort, GAN training time, and the
//! per-request latency histogram, in one exportable block.
//!
//! Run with: `cargo run --release --example drift_monitor`

use fsda::core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda::core::drift::{DriftConfig, DriftDetector};
use fsda::core::telemetry::{self, InMemoryRecorder};
use fsda::core::Method;
use fsda::data::fewshot::few_shot_subset;
use fsda::data::scenario::ScenarioSpec;
use fsda::linalg::{Matrix, SeededRng};
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;
use fsda::serve::server::{ServeConfig, TenantServer};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The drifted stream, as a scenario spec: a layered SCM whose
/// interventions ramp up over four gradual windows. Editing this string
/// is the whole knob surface — see `docs/SCENARIOS.md`.
const SCENARIO: &str = "\
# drift_monitor stream: gradual drift over four windows
topology = layered
features = 32
classes = 4
variant = 6
strength = 2.4
schedule = gradual:4
seed = 9
";

/// Rows generated per drift window; the first `POOL_ROWS` are the labeled
/// pool the operator can draw shots from, the rest are the unlabeled
/// serving traffic the monitor scores.
const WINDOW_ROWS: usize = 288;
const POOL_ROWS: usize = 96;

/// Streams `x` through the server in serving-sized windows and scores the
/// predictions — every row goes through the guarded tenant-routing path.
fn serve_f1(
    server: &TenantServer,
    tenant: &str,
    x: &Matrix,
    labels: &[usize],
    classes: usize,
) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let mut preds = Vec::with_capacity(x.rows());
    let mut version = 0;
    for start in (0..x.rows()).step_by(64) {
        let idx: Vec<usize> = (start..(start + 64).min(x.rows())).collect();
        let resp = server.predict(tenant, x.select_rows(&idx))?;
        preds.extend(resp.predictions);
        version = resp.artifact_version;
    }
    Ok((macro_f1(labels, &preds, classes), version))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== drift monitor: one classifier, a gradual drift stream, zero downtime ==\n");
    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());

    let spec = ScenarioSpec::parse(SCENARIO)?;
    let compiled = spec.compile()?;
    let data = compiled.generate(None)?;
    let classes = spec.classes;
    let windows = compiled.window_fractions().len();
    println!(
        "scenario: {} features, {} of them variant, {} over {windows} windows\n",
        spec.features, spec.variant, spec.schedule
    );

    let mut rng = SeededRng::new(9);
    let cfg = AdapterConfig {
        classifier: ClassifierKind::RandomForest,
        budget: Budget::quick(),
        ..AdapterConfig::default()
    };

    // Two tenants share the serving plane: "nm-frozen" keeps the
    // source-trained model for the whole run, "nm-model" is the same model
    // but gets its FS+GAN front-end re-fit whenever the monitor fires. The
    // gap between the two is what drift mitigation buys, window by window.
    let boot_shots = few_shot_subset(&data.target_pool, spec.shots, &mut rng)?;
    let boot = |seed: u64| -> Result<_, Box<dyn std::error::Error>> {
        let mut m = Method::SrcOnly.build(&cfg, seed);
        m.fit(&data.source_train, &boot_shots)?;
        Ok(m)
    };
    let server = TenantServer::from_artifacts(
        vec![
            ("nm-model".into(), boot(20)?),
            ("nm-frozen".into(), boot(20)?),
        ],
        ServeConfig::default(),
    )?;
    println!(
        "serving boots both tenants on the source-trained model (artifact v1, {} shard(s))\n",
        server.shards()
    );

    // The monitor watches incoming (unlabeled) windows and tells us when
    // re-adaptation is warranted — §VI-F: "FS+GAN only needs to be updated
    // when the data distribution undergoes significant changes".
    let detector = DriftDetector::fit(data.source_train.features(), DriftConfig::default());

    let mut refit_seed = 20u64;
    let mut refits = 0usize;
    let mut variant_sets: Vec<BTreeSet<usize>> = Vec::new();
    for w in 0..windows {
        let window = compiled.generate_window(w, WINDOW_ROWS, None)?;
        let pool = window.subset(&(0..POOL_ROWS).collect::<Vec<_>>());
        let test = window.subset(&(POOL_ROWS..WINDOW_ROWS).collect::<Vec<_>>());

        let report = detector.score(test.features());
        println!(
            "window {w}: {} of {} features drifted -> re-adapt = {}",
            report.drifted_features.len(),
            spec.features,
            report.readapt
        );
        if report.readapt {
            // Re-fit only the cheap FS+GAN front-end from a few shots of
            // the flagged window, then swap — one atomic publish, off the
            // serving path; the classifier itself is untouched.
            let shots = few_shot_subset(&pool, spec.shots, &mut rng)?;
            refit_seed += 1;
            let adapter = FsGanAdapter::fit(&data.source_train, &shots, &cfg, refit_seed)?;
            variant_sets.push(adapter.separation().variant().iter().copied().collect());
            let outcome = server.swap("nm-model", Box::new(adapter))?;
            refits += 1;
            println!(
                "  re-fit FS+GAN and hot-swapped v{} -> v{}",
                outcome.old_version, outcome.new_version
            );
        }
        let (frozen, _) = serve_f1(
            &server,
            "nm-frozen",
            test.features(),
            test.labels(),
            classes,
        )?;
        let (adapted, v) = serve_f1(&server, "nm-model", test.features(), test.labels(), classes)?;
        println!(
            "  frozen   v1: F1 {:>5.1}\n  adaptive v{v}: F1 {:>5.1}\n",
            100.0 * frozen,
            100.0 * adapted
        );
    }
    assert!(refits > 0, "the gradual ramp must trip the monitor");

    // The scenario records which features it actually intervened on, so
    // the monitor loop can be scored against ground truth.
    let truth: BTreeSet<usize> = data.ground_truth_variant.iter().copied().collect();
    if let Some(last) = variant_sets.last() {
        println!(
            "last re-fit found {} variant features, {} of the {} truly intervened",
            last.len(),
            last.intersection(&truth).count(),
            truth.len()
        );
    }
    if variant_sets.len() >= 2 {
        let first = &variant_sets[0];
        let last = &variant_sets[variant_sets.len() - 1];
        println!(
            "variant sets across re-fits: first {}, last {}, shared {} \
             (paper: mostly common across targets, so cross-use stays competitive)",
            first.len(),
            last.len(),
            first.intersection(last).count()
        );
    }

    // Everything the run cost, in one exportable block: the server's
    // per-tenant accounting plus causal CI-test counts and stage timings,
    // GAN fit seconds, NN epochs, and per-request serving latencies.
    let stats = server.stats("nm-model")?;
    println!(
        "\ntenant \"{}\": artifact v{}, {} swap(s), {} requests served, {} error(s)",
        stats.tenant, stats.artifact_version, stats.swaps, stats.completed, stats.serve_errors
    );
    server.shutdown();
    println!("\n== telemetry snapshot ==");
    print!("{}", recorder.snapshot_now().render());
    telemetry::clear_recorder();
    Ok(())
}
