//! Evolving-drift scenario (§VI-F / Table III), end to end through the
//! serving plane's **closed control loop**: the network-management model
//! is trained **once** on the source domain and boots a
//! [`fsda::serve::TenantServer`] as artifact version 1. The drifted
//! stream comes from a **drift scenario spec** (`fsda::data::scenario`)
//! with a gradual schedule: each window interpolates the scenario's
//! interventions a step further, so the distribution slides from
//! source-like to fully drifted instead of jumping.
//!
//! A [`fsda::serve::DriftController`] supervises the adaptive tenant:
//! it scores every (unlabeled) window, and when one leaves the source
//! envelope it re-fits the lightweight FS+GAN front-end from a few
//! labeled shots of its buffered pool — **warm-starting** the F-node
//! search from the previous skeleton — validates the candidate against
//! the incumbent on a held-back slice, and hot-swaps only a winner into
//! the running server. The classifier is never retrained and traffic
//! never stops. A second tenant serves the same stream on the
//! never-adapted source model, so every window reports what mitigation
//! bought.
//!
//! All serving goes through the tenant-routing path (guarded requests,
//! per-tenant accounting, telemetry); the example hand-rolls nothing. The
//! run ends with the server's per-tenant stats and the aggregated
//! telemetry snapshot — including the controller's `control.*` counters —
//! in one exportable block.
//!
//! Run with: `cargo run --release --example drift_monitor`

use fsda::core::adapter::{AdapterConfig, Budget};
use fsda::core::telemetry::{self, InMemoryRecorder};
use fsda::core::GuardConfig;
use fsda::core::Method;
use fsda::data::fewshot::few_shot_subset;
use fsda::data::scenario::ScenarioSpec;
use fsda::linalg::{Matrix, SeededRng};
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;
use fsda::serve::controller::{
    ControlOutcome, ControllerConfig, DriftController, RegistryRefitter,
};
use fsda::serve::server::{ServeConfig, TenantServer};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The drifted stream, as a scenario spec: a layered SCM whose
/// interventions ramp up over four gradual windows. Editing this string
/// is the whole knob surface — see `docs/SCENARIOS.md`.
const SCENARIO: &str = "\
# drift_monitor stream: gradual drift over four windows
topology = layered
features = 32
classes = 4
variant = 6
strength = 2.4
schedule = gradual:4
seed = 9
";

/// Rows generated per drift window; the first `POOL_ROWS` are the labeled
/// pool the controller buffers (shots and validation hold-back are drawn
/// from it), the rest are the unlabeled serving traffic it scores.
const WINDOW_ROWS: usize = 288;
const POOL_ROWS: usize = 96;

/// Streams `x` through the server in serving-sized windows and scores the
/// predictions — every row goes through the guarded tenant-routing path.
fn serve_f1(
    server: &TenantServer,
    tenant: &str,
    x: &Matrix,
    labels: &[usize],
    classes: usize,
) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let mut preds = Vec::with_capacity(x.rows());
    let mut version = 0;
    for start in (0..x.rows()).step_by(64) {
        let idx: Vec<usize> = (start..(start + 64).min(x.rows())).collect();
        let resp = server.predict(tenant, x.select_rows(&idx))?;
        preds.extend(resp.predictions);
        version = resp.artifact_version;
    }
    Ok((macro_f1(labels, &preds, classes), version))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== drift monitor: one classifier, a gradual drift stream, zero downtime ==\n");
    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());

    let spec = ScenarioSpec::parse(SCENARIO)?;
    let compiled = spec.compile()?;
    let data = compiled.generate(None)?;
    let classes = spec.classes;
    let windows = compiled.window_fractions().len();
    println!(
        "scenario: {} features, {} of them variant, {} over {windows} windows\n",
        spec.features, spec.variant, spec.schedule
    );

    let mut rng = SeededRng::new(9);
    let cfg = AdapterConfig {
        classifier: ClassifierKind::RandomForest,
        budget: Budget::quick(),
        ..AdapterConfig::default()
    };

    // Two tenants share the serving plane: "nm-frozen" keeps the
    // source-trained model for the whole run, "nm-model" is the same model
    // but sits under a closed-loop DriftController. The gap between the
    // two is what drift mitigation buys, window by window.
    let boot_shots = few_shot_subset(&data.target_pool, spec.shots, &mut rng)?;
    let boot = |seed: u64| -> Result<_, Box<dyn std::error::Error>> {
        let mut m = Method::SrcOnly.build(&cfg, seed);
        m.fit(&data.source_train, &boot_shots)?;
        Ok(m)
    };
    let incumbent = boot(20)?;
    let incumbent_bytes = incumbent.to_bytes()?;
    let server = Arc::new(TenantServer::from_artifacts(
        vec![
            ("nm-model".into(), incumbent),
            ("nm-frozen".into(), boot(20)?),
        ],
        ServeConfig::default(),
    )?);
    println!(
        "serving boots both tenants on the source-trained model (artifact v1, {} shard(s))\n",
        server.shards()
    );

    // The controller owns the whole loop — §VI-F: "FS+GAN only needs to
    // be updated when the data distribution undergoes significant
    // changes". It watches incoming (unlabeled) windows, re-fits the
    // cheap FS+GAN front-end from buffered shots when one drifts,
    // validates the candidate against the incumbent, and swaps only
    // winners — one atomic publish, off the serving path.
    let refitter = Arc::new(RegistryRefitter::new(
        Method::FsGan,
        cfg.clone(),
        GuardConfig::default(),
        &data.source_train,
    )?);
    let mut controller = DriftController::new(
        "nm-model",
        Arc::clone(&server),
        Arc::new(data.source_train.clone()),
        incumbent_bytes,
        refitter,
        ControllerConfig {
            // Only the freshest window feeds each re-fit, matching the
            // paper's "adapt to the flagged window" protocol.
            buffer_capacity: 1,
            shots_per_class: spec.shots,
            seed: 21,
            ..ControllerConfig::default()
        },
    )?;

    let mut refits = 0usize;
    let mut variant_sets: Vec<BTreeSet<usize>> = Vec::new();
    for w in 0..windows {
        let window = compiled.generate_window(w, WINDOW_ROWS, None)?;
        let pool = window.subset(&(0..POOL_ROWS).collect::<Vec<_>>());
        let test = window.subset(&(POOL_ROWS..WINDOW_ROWS).collect::<Vec<_>>());

        controller.push_window(pool)?;
        match controller.observe(test.features()) {
            ControlOutcome::NoDrift(report) => {
                println!(
                    "window {w}: {} of {} features drifted -> within envelope, no action",
                    report.drifted_features.len(),
                    spec.features
                );
            }
            ControlOutcome::Swapped(swap) => {
                refits += 1;
                if let Some(variant) = controller.prev_variant() {
                    variant_sets.push(variant.iter().copied().collect());
                }
                println!(
                    "window {w}: drifted -> re-fit ({} search), validated \
                     F1 {:.2} > {:.2}, hot-swapped to v{} in {:.0} ms",
                    swap.path,
                    swap.candidate_f1,
                    swap.incumbent_f1,
                    swap.version,
                    swap.detect_to_swap.as_secs_f64() * 1e3
                );
            }
            ControlOutcome::Rejected(reject) => {
                println!(
                    "window {w}: drifted -> candidate F1 {:.2} lost the gate \
                     to {:.2}; incumbent retained",
                    reject.candidate_f1, reject.incumbent_f1
                );
            }
            ControlOutcome::Failed(failure) => {
                println!(
                    "window {w}: drifted -> re-fit contained after {} attempt(s): {}",
                    failure.attempts, failure.last_error
                );
            }
            ControlOutcome::BreakerOpen { remaining } => {
                println!(
                    "window {w}: drifted -> breaker open ({remaining:?} to probe), \
                     serving last-good"
                );
            }
            ControlOutcome::CorruptWindow(e) => {
                println!("window {w}: corrupt serving window contained: {e}");
            }
        }

        let (frozen, _) = serve_f1(
            &server,
            "nm-frozen",
            test.features(),
            test.labels(),
            classes,
        )?;
        let (adapted, v) = serve_f1(&server, "nm-model", test.features(), test.labels(), classes)?;
        println!(
            "  frozen   v1: F1 {:>5.1}\n  adaptive v{v}: F1 {:>5.1}\n",
            100.0 * frozen,
            100.0 * adapted
        );
    }
    assert!(refits > 0, "the gradual ramp must trip the monitor");

    // The scenario records which features it actually intervened on, so
    // the control loop can be scored against ground truth.
    let truth: BTreeSet<usize> = data.ground_truth_variant.iter().copied().collect();
    if let Some(last) = variant_sets.last() {
        println!(
            "last re-fit found {} variant features, {} of the {} truly intervened",
            last.len(),
            last.intersection(&truth).count(),
            truth.len()
        );
    }
    if variant_sets.len() >= 2 {
        let first = &variant_sets[0];
        let last = &variant_sets[variant_sets.len() - 1];
        println!(
            "variant sets across re-fits: first {}, last {}, shared {} \
             (paper: mostly common across targets, so cross-use stays competitive)",
            first.len(),
            last.len(),
            first.intersection(last).count()
        );
    }

    // Everything the run cost, in one exportable block: the server's
    // per-tenant accounting plus the controller's control.* counters,
    // causal CI-test counts and stage timings, GAN fit seconds, NN
    // epochs, and per-request serving latencies.
    let stats = server.stats("nm-model")?;
    println!(
        "\ntenant \"{}\": artifact v{}, {} swap(s), {} requests served, {} error(s)",
        stats.tenant, stats.artifact_version, stats.swaps, stats.completed, stats.serve_errors
    );
    drop(controller);
    if let Ok(server) = Arc::try_unwrap(server) {
        server.shutdown();
    }
    println!("\n== telemetry snapshot ==");
    print!("{}", recorder.snapshot_now().render());
    telemetry::clear_recorder();
    Ok(())
}
