//! The 5GC workload from the paper's evaluation: 16-way network-failure
//! classification across a digital-twin → real-network domain shift,
//! comparing several DA methods at 1/5/10 target shots.
//!
//! Run with: `cargo run --release --example failure_classification_5gc`
//! (add `FSDA_FULL=1` for the paper-scale 442-feature dataset).

use fsda::core::adapter::Budget;
use fsda::core::experiment::{run_cell, ExperimentConfig, Scenario};
use fsda::core::method::Method;
use fsda::data::synth5gc::Synth5gc;
use fsda::models::ClassifierKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::var("FSDA_FULL").is_ok();
    let generator = if full {
        Synth5gc::full()
    } else {
        Synth5gc::small()
    };
    println!(
        "== 5GC failure classification ({} features, {} classes) ==\n",
        generator.num_features(),
        generator.num_classes()
    );
    let bundle = generator.generate(1)?;
    let scenario = Scenario {
        name: "5GC".into(),
        source: bundle.source_train,
        target_pool: bundle.target_pool,
        pool_groups: None,
        num_groups: 16,
        target_test: bundle.target_test,
    };

    let config = ExperimentConfig {
        shots: vec![1, 5, 10],
        repeats: if full { 3 } else { 1 },
        budget: if full {
            Budget::full()
        } else {
            Budget::quick()
        },
        seed: 0,
        parallel: true,
    };

    let methods = [
        Method::SrcOnly,
        Method::TarOnly,
        Method::Coral,
        Method::Fs,
        Method::FsGan,
    ];
    println!(
        "{:<14} {:>8} {:>8} {:>8}   (macro-F1 x100, RF classifier)",
        "method", "k=1", "k=5", "k=10"
    );
    for method in methods {
        print!("{:<14}", method.label());
        for &k in &config.shots {
            let cell = run_cell(&scenario, method, ClassifierKind::RandomForest, k, &config)?;
            print!(" {:>8.1}", cell.percent());
        }
        println!();
    }
    println!(
        "\nExpected shape (paper, Table I): SrcOnly collapses; FS recovers\n\
         most performance; FS+GAN adds a further gain; all improve with k."
    );
    Ok(())
}
