//! The 5GIPC workload: binary fault detection on an NFV IP-core testbed,
//! with the domains recovered by GMM clustering exactly as in the paper
//! (§IV-B), then adapted with FS+GAN.
//!
//! Run with: `cargo run --release --example fault_detection_5gipc`

use fsda::core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda::data::fewshot::few_shot_indices;
use fsda::data::synth5gipc::{Synth5gipc, NUM_GROUPS};
use fsda::linalg::SeededRng;
use fsda::models::metrics::{accuracy, macro_f1};
use fsda::models::ClassifierKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 5GIPC fault detection ==\n");

    // Reproduce the paper's domain construction: generate the mixed
    // dataset, fit a 2-component GMM, larger cluster = source domain.
    let generator = Synth5gipc::small();
    let (bundle, agreement) = generator.generate_clustered(3)?;
    println!(
        "GMM domain split agrees with the true generating regime on {:.1}% of samples",
        100.0 * agreement
    );
    println!(
        "source: {} samples; target test: {} samples; {} metrics\n",
        bundle.source_train.len(),
        bundle.target_test.len(),
        bundle.source_train.num_features()
    );

    // Few-shot selection is per *fault type* (normal, node failure,
    // interface failure, packet loss, packet delay) even though labels are
    // binary — the paper's protocol.
    for k in [1usize, 5, 10] {
        let mut rng = SeededRng::new(7 + k as u64);
        let idx = few_shot_indices(&bundle.target_pool_groups, NUM_GROUPS, k, &mut rng)?;
        let shots = bundle.target_pool.subset(&idx);
        let config = AdapterConfig {
            classifier: ClassifierKind::Xgb,
            budget: Budget::quick(),
            ..AdapterConfig::default()
        };
        let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &config, 11)?;
        let pred = adapter.predict(bundle.target_test.features());
        let f1 = macro_f1(bundle.target_test.labels(), &pred, 2);
        let acc = accuracy(bundle.target_test.labels(), &pred);
        println!(
            "k={k:>2}: {} target shots -> FS+GAN F1 {:.1}, accuracy {:.1}%  ({} variant features found)",
            shots.len(),
            100.0 * f1,
            100.0 * acc,
            adapter.separation().variant().len()
        );
    }
    println!(
        "\nGround truth: {} intervened features; detection grows with k (paper §VI-C).",
        bundle.ground_truth_variant.len()
    );
    Ok(())
}
