//! Train-once / serve-many through the method registry: build any
//! registered method as a `Box<dyn DriftMitigator>`, persist the trained
//! pipeline to disk, then reload it in a "serving process" and adapt a
//! stream of target batches — no retraining, no refitting, and no
//! method-specific code anywhere in the serving loop.
//!
//! The demo also installs the aggregating telemetry recorder, so the
//! run ends with the operational picture a dashboard would scrape:
//! per-method request counts, repair/rejection tallies, and latency
//! histograms for every fit and predict that happened.
//!
//! Run with: `cargo run --release --example serve_demo`

use fsda::core::adapter::AdapterConfig;
use fsda::core::pipeline::{self, DriftMitigator};
use fsda::core::telemetry::{self, InMemoryRecorder};
use fsda::core::{report, GuardConfig, InputPolicy, Method};
use fsda::data::fewshot::few_shot_subset;
use fsda::data::synth5gc::Synth5gc;
use fsda::linalg::SeededRng;
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== fsda serve demo ==\n");

    // Everything below — training, restore, every guarded request —
    // aggregates into this recorder at negligible cost; with no
    // recorder installed, every emission site is one atomic load.
    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());

    // ---------------------------------------------------------------
    // Offline: build the paper's method from the registry, fit it once,
    // and persist it as an artifact. Swapping `Method::FsGan` for any
    // other Table I/II row changes nothing below this line.
    // ---------------------------------------------------------------
    let bundle = Synth5gc::small().generate(42)?;
    let mut rng = SeededRng::new(7);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng)?;
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);

    let mut mitigator: Box<dyn DriftMitigator> = Method::FsGan.build(&cfg, 1);
    let start = Instant::now();
    mitigator.fit(&bundle.source_train, &shots)?;
    println!(
        "trained {} in {:.1}s",
        mitigator.method(),
        start.elapsed().as_secs_f64()
    );

    let mut path = std::env::temp_dir();
    path.push(format!("fsda-serve-demo-{}.fsda", std::process::id()));
    std::fs::write(&path, mitigator.to_bytes()?)?;
    let artifact_len = std::fs::metadata(&path)?.len();
    println!(
        "saved artifact: {} ({:.1} KiB)\n",
        path.display(),
        artifact_len as f64 / 1024.0
    );
    drop(mitigator); // The trainer is gone; only the artifact remains.

    // ---------------------------------------------------------------
    // Online: a serving process restores the artifact — without knowing
    // which method produced it — and adapts a stream of drifted target
    // batches. The classifier inside is never touched.
    // ---------------------------------------------------------------
    let start = Instant::now();
    let served: Box<dyn DriftMitigator> = pipeline::restore(&std::fs::read(&path)?)?;
    println!(
        "restored a {} artifact in {:.1} ms",
        served.method(),
        start.elapsed().as_secs_f64() * 1e3
    );
    println!("{}", served.health());

    // Production telemetry is untrusted: serve through the guarded path.
    // `Reject` returns a typed, localized error on the first corrupt cell;
    // `ImputeSourceMean`/`Clamp` repair in place and keep serving.
    let guard = GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean);

    let x = bundle.target_test.features();
    let y = bundle.target_test.labels();
    let batch_size = 64;
    let mut total_rows = 0usize;
    let mut total_secs = 0.0f64;
    for (b, start_row) in (0..x.rows()).step_by(batch_size).enumerate() {
        let idx: Vec<usize> = (start_row..(start_row + batch_size).min(x.rows())).collect();
        let mut batch = x.select_rows(&idx);
        let labels: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
        if b == 2 {
            // Simulate a sensor glitch: the guarded path repairs it with
            // the source-mean statistic instead of corrupting the batch.
            batch.set(0, 0, f64::NAN);
        }

        let t0 = Instant::now();
        let pred = served.try_predict_batch(&batch, None, &guard)?;
        let secs = t0.elapsed().as_secs_f64();
        total_rows += batch.rows();
        total_secs += secs;

        let f1 = macro_f1(&labels, &pred, served.num_classes());
        println!(
            "batch {b:>2}: {:>3} rows adapted + classified in {:>6.2} ms (F1 {:.3})",
            batch.rows(),
            secs * 1e3,
            f1
        );
    }
    println!(
        "\nserved {} rows at {:.0} rows/sec — classifier trained once, retrained never",
        total_rows,
        total_rows as f64 / total_secs.max(1e-12)
    );

    // The pipeline-health report folds the recorder's snapshot in: one
    // string with the fit summary and every counter, gauge, histogram,
    // and event the run produced.
    println!("\n== pipeline health ==");
    println!("{}", report::format_pipeline_health(served.as_ref()));
    telemetry::clear_recorder();

    std::fs::remove_file(&path)?;
    Ok(())
}
