//! Train-once / serve-many through the method registry and the
//! multi-tenant server: build any registered method as a
//! `Box<dyn DriftMitigator>`, persist the trained pipeline to disk, then
//! boot a [`fsda::serve::TenantServer`] on the restored artifact and
//! stream target batches through it — no retraining, no refitting, and no
//! method-specific code anywhere in the serving loop.
//!
//! The server owns the production concerns this example used to hand-roll:
//! input guardrails (a corrupt cell is repaired by the configured
//! [`fsda::core::InputPolicy`], not by per-batch glue), per-tenant
//! admission control, and telemetry. Mid-stream the artifact is
//! hot-swapped from its file — the drift → re-fit → swap loop — with
//! requests flowing throughout.
//!
//! Run with: `cargo run --release --example serve_demo`

use fsda::core::adapter::AdapterConfig;
use fsda::core::pipeline::{self, DriftMitigator};
use fsda::core::telemetry::{self, InMemoryRecorder};
use fsda::core::{GuardConfig, InputPolicy, Method};
use fsda::data::fewshot::few_shot_subset;
use fsda::data::synth5gc::Synth5gc;
use fsda::linalg::SeededRng;
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;
use fsda::serve::server::{ServeConfig, TenantServer};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== fsda serve demo ==\n");

    // Everything below — training, restore, every guarded request —
    // aggregates into this recorder at negligible cost; with no
    // recorder installed, every emission site is one atomic load.
    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());

    // ---------------------------------------------------------------
    // Offline: build the paper's method from the registry, fit it once,
    // and persist it as an artifact. Swapping `Method::FsGan` for any
    // other Table I/II row changes nothing below this line.
    // ---------------------------------------------------------------
    let bundle = Synth5gc::small().generate(42)?;
    let mut rng = SeededRng::new(7);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng)?;
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);

    let mut mitigator: Box<dyn DriftMitigator> = Method::FsGan.build(&cfg, 1);
    let start = Instant::now();
    mitigator.fit(&bundle.source_train, &shots)?;
    println!(
        "trained {} in {:.1}s",
        mitigator.method(),
        start.elapsed().as_secs_f64()
    );

    let mut path = std::env::temp_dir();
    path.push(format!("fsda-serve-demo-{}.fsda", std::process::id()));
    std::fs::write(&path, mitigator.to_bytes()?)?;
    let artifact_len = std::fs::metadata(&path)?.len();
    println!(
        "saved artifact: {} ({:.1} KiB)\n",
        path.display(),
        artifact_len as f64 / 1024.0
    );
    drop(mitigator); // The trainer is gone; only the artifact remains.

    // ---------------------------------------------------------------
    // Online: the serving process restores the artifact — without
    // knowing which method produced it — and boots the tenant server on
    // it. The guard policy lives in the server config; every request
    // below goes through the guarded, telemetered tenant-routing path.
    // ---------------------------------------------------------------
    let start = Instant::now();
    let restored: Box<dyn DriftMitigator> = pipeline::restore(&std::fs::read(&path)?)?;
    println!(
        "restored a {} artifact in {:.1} ms",
        restored.method(),
        start.elapsed().as_secs_f64() * 1e3
    );
    println!("{}", restored.health());

    let server = TenantServer::from_artifacts(
        vec![("demo".into(), restored)],
        ServeConfig {
            guard: GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean),
            ..ServeConfig::default()
        },
    )?;

    let x = bundle.target_test.features();
    let y = bundle.target_test.labels();
    let num_classes = y.iter().copied().max().unwrap_or(0) + 1;
    let batch_size = 64;
    let mut total_rows = 0usize;
    let mut total_secs = 0.0f64;
    for (b, start_row) in (0..x.rows()).step_by(batch_size).enumerate() {
        let idx: Vec<usize> = (start_row..(start_row + batch_size).min(x.rows())).collect();
        let mut batch = x.select_rows(&idx);
        let labels: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
        if b == 2 {
            // Simulate a sensor glitch: the server's guard repairs it with
            // the source-mean statistic instead of corrupting the batch.
            batch.set(0, 0, f64::NAN);
        }
        if b == 4 {
            // Drift was detected and a re-fit landed in the artifact file:
            // hot-swap it in. In-flight batches finish on the old version;
            // this one already observes the new one.
            let outcome = server.swap_from_bytes("demo", &std::fs::read(&path)?)?;
            println!(
                "          hot-swap: v{} -> v{} with traffic flowing",
                outcome.old_version, outcome.new_version
            );
        }

        let t0 = Instant::now();
        let resp = server.predict("demo", batch)?;
        let secs = t0.elapsed().as_secs_f64();
        total_rows += resp.predictions.len();
        total_secs += secs;

        let f1 = macro_f1(&labels, &resp.predictions, num_classes);
        println!(
            "batch {b:>2}: {:>3} rows served on artifact v{} in {:>6.2} ms (F1 {:.3})",
            resp.predictions.len(),
            resp.artifact_version,
            secs * 1e3,
            f1
        );
    }
    println!(
        "\nserved {} rows at {:.0} rows/sec — classifier trained once, retrained never",
        total_rows,
        total_rows as f64 / total_secs.max(1e-12)
    );

    // The operational picture a dashboard would scrape: the server's
    // per-tenant accounting plus every counter, gauge, and latency
    // histogram the run produced.
    let stats = server.stats("demo")?;
    println!(
        "\ntenant \"{}\": artifact v{}, {} swap(s), {} admitted / {} completed / {} error(s)",
        stats.tenant,
        stats.artifact_version,
        stats.swaps,
        stats.admitted,
        stats.completed,
        stats.serve_errors
    );
    server.shutdown();
    println!("\n== telemetry snapshot ==");
    print!("{}", recorder.snapshot_now().render());
    telemetry::clear_recorder();

    std::fs::remove_file(&path)?;
    Ok(())
}
