//! Train-once / serve-many: persist a trained FS+GAN pipeline to disk, then
//! reload it in a "serving process" and adapt a stream of target batches
//! with the batched reconstruction path — no retraining, no refitting.
//!
//! Run with: `cargo run --release --example serve_demo`

use fsda::core::adapter::{AdapterConfig, FsGanAdapter};
use fsda::core::{GuardConfig, InputPolicy};
use fsda::data::fewshot::few_shot_subset;
use fsda::data::synth5gc::Synth5gc;
use fsda::linalg::SeededRng;
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== fsda serve demo ==\n");

    // ---------------------------------------------------------------
    // Offline: fit the pipeline once and persist it as an artifact.
    // ---------------------------------------------------------------
    let bundle = Synth5gc::small().generate(42)?;
    let mut rng = SeededRng::new(7);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng)?;
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);

    let start = Instant::now();
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 1)?;
    println!(
        "trained FS+GAN pipeline in {:.1}s ({} variant / {} invariant features)",
        start.elapsed().as_secs_f64(),
        adapter.separation().variant().len(),
        adapter.separation().invariant().len()
    );

    let mut path = std::env::temp_dir();
    path.push(format!("fsda-serve-demo-{}.fsda", std::process::id()));
    adapter.save(&path)?;
    let artifact_len = std::fs::metadata(&path)?.len();
    println!(
        "saved artifact: {} ({:.1} KiB)\n",
        path.display(),
        artifact_len as f64 / 1024.0
    );
    drop(adapter); // The trainer is gone; only the artifact remains.

    // ---------------------------------------------------------------
    // Online: a serving process loads the artifact and adapts a stream
    // of drifted target batches. The classifier inside is never touched.
    // ---------------------------------------------------------------
    let start = Instant::now();
    let served = FsGanAdapter::load(&path)?;
    println!(
        "loaded artifact in {:.1} ms",
        start.elapsed().as_secs_f64() * 1e3
    );

    // Production telemetry is untrusted: serve through the guarded path.
    // `Reject` returns a typed, localized error on the first corrupt cell;
    // `ImputeSourceMean`/`Clamp` repair in place and keep serving.
    let guard = GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean);

    let x = bundle.target_test.features();
    let y = bundle.target_test.labels();
    let batch_size = 64;
    let mut total_rows = 0usize;
    let mut total_secs = 0.0f64;
    for (b, start_row) in (0..x.rows()).step_by(batch_size).enumerate() {
        let idx: Vec<usize> = (start_row..(start_row + batch_size).min(x.rows())).collect();
        let mut batch = x.select_rows(&idx);
        let labels: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
        if b == 2 {
            // Simulate a sensor glitch: the guarded path repairs it with
            // the source-mean statistic instead of corrupting the batch.
            batch.set(0, 0, f64::NAN);
        }

        let t0 = Instant::now();
        let pred = served.try_predict_batch(&batch, None, &guard)?;
        let secs = t0.elapsed().as_secs_f64();
        total_rows += batch.rows();
        total_secs += secs;

        let f1 = macro_f1(&labels, &pred, served.num_classes());
        println!(
            "batch {b:>2}: {:>3} rows adapted + classified in {:>6.2} ms (F1 {:.3})",
            batch.rows(),
            secs * 1e3,
            f1
        );
    }
    println!(
        "\nserved {} rows at {:.0} rows/sec — classifier trained once, retrained never",
        total_rows,
        total_rows as f64 / total_secs.max(1e-12)
    );

    std::fs::remove_file(&path)?;
    Ok(())
}
