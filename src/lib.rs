//! # fsda — Few-Shot Domain Adaptation for Data Drift Mitigation
//!
//! A from-scratch Rust reproduction of *"Few-Shot Domain Adaptation for
//! Effective Data Drift Mitigation in Network Management"* (Johari,
//! Tornatore, Boutaba, Saleh — ICDCS 2025).
//!
//! ML models for network management (failure classification, fault
//! detection, traffic prediction, ...) degrade when operational data drifts
//! away from the training distribution. The paper's remedy is a
//! model-agnostic, few-shot pipeline that never retrains the downstream
//! models:
//!
//! 1. **Causal feature separation (FS)** — treat the drift as *soft
//!    interventions* on an unknown feature subset and identify the
//!    intervened ("domain-variant") features with a targeted causal search
//!    over a combined source+target dataset with an added domain-indicator
//!    F-node. See [`causal`] and [`core::fs`].
//! 2. **GAN reconstruction** — a conditional GAN trained *only on source
//!    data* learns `P(X_var | X_inv)`; at inference it maps each test
//!    sample's variant features back into the source distribution so a
//!    purely source-trained classifier keeps working. See [`gan`] and
//!    [`core::adapter`].
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Contents |
//! |---|---|
//! | [`linalg`] | dense matrices, decompositions, statistics, seeded RNG |
//! | [`nn`] | from-scratch NN substrate (layers, Adam, losses) |
//! | [`causal`] | CI tests, PC algorithm, F-node intervention search |
//! | [`data`] | `Dataset`, SCM generators for the 5GC/5GIPC datasets, GMM |
//! | [`models`] | TNet / MLP / random-forest / XGBoost classifiers, metrics |
//! | [`gan`] | conditional GAN, VAE, autoencoder reconstructors |
//! | [`core`] | FS, FS+GAN, the 11 baselines, experiment runner |
//! | [`serve`] | multi-tenant serving: manifest boot, lock-free artifact hot-swap |
//!
//! # Quickstart
//!
//! ```no_run
//! use fsda::core::adapter::{AdapterConfig, FsGanAdapter};
//! use fsda::data::fewshot::few_shot_subset;
//! use fsda::data::synth5gc::Synth5gc;
//! use fsda::linalg::SeededRng;
//! use fsda::models::metrics::macro_f1;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A digital-twin (source) and drifted real-network (target) dataset.
//! let bundle = Synth5gc::small().generate(42)?;
//!
//! // Five labelled samples per failure type from the target network.
//! let mut rng = SeededRng::new(7);
//! let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng)?;
//!
//! // Fit the two-step pipeline; the classifier only ever sees source data.
//! let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &AdapterConfig::quick(), 0)?;
//! let pred = adapter.predict(bundle.target_test.features());
//! println!("F1 = {:.1}", 100.0 * macro_f1(bundle.target_test.labels(), &pred, 16));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harnesses that regenerate every table of the paper.

pub use fsda_causal as causal;
pub use fsda_core as core;
pub use fsda_data as data;
pub use fsda_gan as gan;
pub use fsda_linalg as linalg;
pub use fsda_models as models;
pub use fsda_nn as nn;
pub use fsda_serve as serve;
