//! Fault-injection no-panic suite: replays deterministic telemetry
//! corruption (see `fsda_data::faultinject`) against every public entry
//! point of the pipeline and asserts the robustness contract — corrupt
//! input yields a typed `Err` or a flagged degraded result, never a panic,
//! and anything served back to the caller is finite.

use fsda::causal::ci::FisherZ;
use fsda::core::adapter::{AdapterConfig, FsAdapter, FsGanAdapter};
use fsda::core::fs::{FeatureSeparation, FsConfig};
use fsda::core::{FitError, GuardConfig, InputPolicy};
use fsda::data::csv::{read_csv, write_csv};
use fsda::data::dataset::Dataset;
use fsda::data::faultinject::{CsvFault, Fault};
use fsda::data::fewshot::{few_shot_indices, few_shot_subset};
use fsda::data::synth5gc::Synth5gc;
use fsda::data::synth5gipc::{Synth5gipc, NUM_GROUPS};
use fsda::linalg::{Matrix, SeededRng};

const CORRUPTION_SEED: u64 = 0xBAD;

fn policies() -> [GuardConfig; 3] {
    [
        GuardConfig::default(),
        GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean),
        GuardConfig::default().with_policy(InputPolicy::Clamp),
    ]
}

/// The serving contract, checked for one adapter against one corrupted
/// batch under every input policy: each guarded call either reports a
/// typed error or returns fully finite outputs. The repairing policies
/// must additionally succeed whenever the batch keeps its column count
/// (no fault in the canonical suite changes it).
fn assert_serving_contract(adapter: &FsGanAdapter, fs: &FsAdapter, batch: &Matrix, label: &str) {
    for guard in policies() {
        match adapter.try_reconstruct_batch(batch, None, &guard) {
            Ok(recon) => {
                assert!(
                    recon.is_finite(),
                    "{label}/{:?}: reconstruction must be finite",
                    guard.policy
                );
            }
            Err(_) => assert!(
                matches!(guard.policy, InputPolicy::Reject),
                "{label}/{:?}: repairing policies must not fail on same-width batches",
                guard.policy
            ),
        }
        match adapter.try_predict_batch(batch, None, &guard) {
            Ok(pred) => assert!(pred.iter().all(|&p| p < adapter.num_classes())),
            Err(_) => assert!(matches!(guard.policy, InputPolicy::Reject)),
        }
        match fs.try_predict(batch, &guard) {
            Ok(pred) => assert!(pred.iter().all(|&p| p < adapter.num_classes())),
            Err(_) => assert!(matches!(guard.policy, InputPolicy::Reject)),
        }
    }
}

#[test]
fn serving_survives_corrupt_5gc_batches() {
    let bundle = Synth5gc::small().generate(41).unwrap();
    let mut rng = SeededRng::new(41 ^ 0xAB);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    let cfg = AdapterConfig::quick();
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 43).unwrap();
    let fs = FsAdapter::fit(&bundle.source_train, &shots, &cfg, 43).unwrap();

    for fault in Fault::canonical_suite() {
        let batch = fault.apply_to_matrix(bundle.target_test.features(), CORRUPTION_SEED);
        assert_serving_contract(&adapter, &fs, &batch, fault.name());
    }
}

#[test]
fn serving_survives_corrupt_5gipc_batches() {
    let bundle = Synth5gipc::small().generate(42).unwrap();
    let mut rng = SeededRng::new(42 ^ 0xAB);
    let idx = few_shot_indices(&bundle.target_pool_groups, NUM_GROUPS, 5, &mut rng).unwrap();
    let shots = bundle.target_pool.subset(&idx);
    let cfg = AdapterConfig::quick();
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 44).unwrap();
    let fs = FsAdapter::fit(&bundle.source_train, &shots, &cfg, 44).unwrap();

    for fault in Fault::canonical_suite() {
        let batch = fault.apply_to_matrix(bundle.target_test.features(), CORRUPTION_SEED);
        assert_serving_contract(&adapter, &fs, &batch, fault.name());
    }
}

#[test]
fn fitting_survives_corrupt_shots() {
    let bundle = Synth5gc::small().generate(45).unwrap();
    let mut rng = SeededRng::new(45 ^ 0xAB);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    let cfg = AdapterConfig::quick();
    let impute = GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean);

    for fault in Fault::canonical_suite() {
        let corrupt = fault.apply(&shots, CORRUPTION_SEED).unwrap();
        // Under the repairing policy, fitting either succeeds with a
        // serviceable adapter or reports a typed failure (e.g. watchdog
        // divergence) — it never panics.
        match FsGanAdapter::try_fit(&bundle.source_train, &corrupt, &cfg, 47, &impute) {
            Ok(adapter) => {
                let pred = adapter
                    .try_predict_batch(bundle.target_test.features(), None, &impute)
                    .unwrap();
                assert!(pred.iter().all(|&p| p < adapter.num_classes()));
            }
            Err(e) => {
                assert!(
                    !matches!(e, FitError::CorruptShots { .. }),
                    "{}: impute policy should repair corrupt cells, got {e}",
                    fault.name()
                );
            }
        }
    }

    // The reject policy localizes non-finite training cells instead of
    // training on them.
    let nan_shots = Fault::NanCells { fraction: 0.05 }
        .apply(&shots, CORRUPTION_SEED)
        .unwrap();
    assert!(matches!(
        FsGanAdapter::try_fit(
            &bundle.source_train,
            &nan_shots,
            &cfg,
            47,
            &GuardConfig::default()
        ),
        Err(FitError::CorruptShots { .. })
    ));
    let nan_source = Dataset::new(
        Fault::InfCells { fraction: 0.02 }
            .apply_to_matrix(bundle.source_train.features(), CORRUPTION_SEED),
        bundle.source_train.labels().to_vec(),
        bundle.source_train.num_classes(),
    )
    .unwrap();
    assert!(matches!(
        FsGanAdapter::try_fit(&nan_source, &shots, &cfg, 47, &GuardConfig::default()),
        Err(FitError::CorruptSource { .. })
    ));
}

#[test]
fn separation_and_ci_reject_or_tolerate_corruption() {
    let bundle = Synth5gc::small().generate(48).unwrap();
    let mut rng = SeededRng::new(48 ^ 0xAB);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();

    for fault in Fault::canonical_suite() {
        let corrupt = fault.apply(&shots, CORRUPTION_SEED).unwrap();
        // Ok (the search tolerates the corruption, e.g. dead counters via
        // the ridge fallback) or a typed Err (non-finite cells) — no panic.
        let _ = FeatureSeparation::fit(&bundle.source_train, &corrupt, &FsConfig::default());

        let matrix = fault.apply_to_matrix(shots.features(), CORRUPTION_SEED);
        match FisherZ::new(&matrix) {
            Ok(test) => {
                // Constant columns and permutations are tolerated; every
                // p-value the test produces must still be a probability.
                use fsda::causal::ci::CondIndepTest;
                let p = test.pvalue(0, 1, &[2]).unwrap();
                assert!((0.0..=1.0).contains(&p), "{}: p={p}", fault.name());
            }
            Err(_) => {
                assert!(
                    !matrix.is_finite(),
                    "{}: FisherZ::new may only reject non-finite data",
                    fault.name()
                );
            }
        }
    }
}

#[test]
fn csv_ingestion_reports_typed_errors() {
    let bundle = Synth5gc::small().generate(49).unwrap();
    let mut rng = SeededRng::new(49 ^ 0xAB);
    let small = few_shot_subset(&bundle.target_pool, 5, &mut rng).unwrap();
    let mut buf = Vec::new();
    write_csv(&small, &mut buf).unwrap();
    let clean = String::from_utf8(buf).unwrap();

    assert!(read_csv(clean.as_bytes()).is_ok());
    for fault in CsvFault::all() {
        let broken = fault.apply(&clean, CORRUPTION_SEED);
        let err = read_csv(broken.as_bytes());
        assert!(err.is_err(), "{fault:?}: corrupt csv must not parse");
        // Errors are typed and printable (line numbers for row-level
        // faults); formatting must not panic either.
        let _ = format!("{}", err.unwrap_err());
    }
}
