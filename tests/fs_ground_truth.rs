//! Integration test scoring the FS method against the generator's known
//! intervention targets — the validation that only synthetic data makes
//! possible (the real datasets have no ground truth).

use fsda::core::fs::{FeatureSeparation, FsConfig};
use fsda::data::fewshot::few_shot_subset;
use fsda::data::synth5gc::Synth5gc;
use fsda::linalg::SeededRng;

#[test]
fn fs_precision_recall_against_ground_truth() {
    let bundle = Synth5gc::small().generate(1).unwrap();
    let mut rng = SeededRng::new(2);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    let fs = FeatureSeparation::fit(&bundle.source_train, &shots, &FsConfig::default()).unwrap();
    let (precision, recall) = fs.score_against(&bundle.ground_truth_variant);
    assert!(precision > 0.75, "precision {precision:.2}");
    assert!(recall > 0.6, "recall {recall:.2}");
}

#[test]
fn detection_count_grows_with_shots() {
    // §VI-C: 35/68/75 variant features at 1/5/10 shots (5GC). At the small
    // scale we check the qualitative trend over several draws.
    let bundle = Synth5gc::small().generate(3).unwrap();
    let count_at = |k: usize, seed: u64| {
        let mut rng = SeededRng::new(seed);
        let shots = few_shot_subset(&bundle.target_pool, k, &mut rng).unwrap();
        FeatureSeparation::fit(&bundle.source_train, &shots, &FsConfig::default())
            .unwrap()
            .variant()
            .len()
    };
    let avg = |k: usize| -> f64 {
        let counts: Vec<f64> = (0..3).map(|s| count_at(k, 10 + s) as f64).collect();
        counts.iter().sum::<f64>() / counts.len() as f64
    };
    let c1 = avg(1);
    let c10 = avg(10);
    assert!(
        c10 >= c1,
        "more target samples should detect at least as many variant features: \
         k=1 -> {c1:.1}, k=10 -> {c10:.1}"
    );
}

#[test]
fn stricter_alpha_is_more_conservative() {
    let bundle = Synth5gc::small().generate(5).unwrap();
    let mut rng = SeededRng::new(6);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).unwrap();
    let loose = FeatureSeparation::fit(
        &bundle.source_train,
        &shots,
        &FsConfig {
            alpha: 0.05,
            ..FsConfig::default()
        },
    )
    .unwrap();
    let strict = FeatureSeparation::fit(
        &bundle.source_train,
        &shots,
        &FsConfig {
            alpha: 1e-6,
            ..FsConfig::default()
        },
    )
    .unwrap();
    assert!(
        strict.variant().len() <= loose.variant().len(),
        "alpha=1e-6 ({}) should find no more than alpha=0.05 ({})",
        strict.variant().len(),
        loose.variant().len()
    );
}

#[test]
fn conditionally_invariant_descendants_are_excluded_from_ground_truth() {
    // The per-VNF traffic aggregates shift marginally (their parents are
    // intervened) but their mechanisms are unchanged: they must not be in
    // the generator's ground-truth variant set.
    let bundle = Synth5gc::small().generate(7).unwrap();
    let names = bundle.source_train.feature_names();
    for &col in &bundle.ground_truth_variant {
        assert!(
            !names[col].contains("traffic_total"),
            "{} flagged",
            names[col]
        );
    }
    // And there IS at least one aggregate column in the data.
    assert!(names.iter().any(|n| n.contains("traffic_total")));
}
