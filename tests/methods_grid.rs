//! Integration test sweeping all thirteen Table-I methods through the
//! experiment runner — every method must run end-to-end, and our approaches
//! must rank at the top, reproducing the table's qualitative outcome.

use fsda::core::adapter::Budget;
use fsda::core::experiment::{run_grid, ExperimentConfig, Scenario};
use fsda::core::method::Method;
use fsda::core::report::{format_table1, method_means};
use fsda::data::synth5gc::Synth5gc;
use fsda::models::ClassifierKind;

#[test]
fn all_thirteen_methods_run_and_ours_lead() {
    let b = Synth5gc::small().generate(1).unwrap();
    let scenario = Scenario {
        name: "5GC".into(),
        source: b.source_train,
        target_pool: b.target_pool,
        pool_groups: None,
        num_groups: 16,
        target_test: b.target_test,
    };
    let cfg = ExperimentConfig {
        shots: vec![5],
        repeats: 1,
        budget: Budget::quick(),
        seed: 3,
        parallel: false,
    };
    // One classifier column keeps the runtime reasonable; the grid still
    // exercises every method implementation. The MLP column carries the
    // paper's collapse mechanism at reduced scale.
    let grid = run_grid(&scenario, &Method::TABLE1, &[ClassifierKind::Mlp], &cfg).unwrap();

    // 9 model-agnostic methods x 1 classifier + 4 model-specific.
    assert_eq!(grid.len(), 13);
    for e in &grid {
        assert!(
            (0.0..=1.0).contains(&e.result.mean_f1),
            "{}: f1 out of range",
            e.method.label()
        );
    }

    // Rendering works and mentions every method.
    let table = format_table1("5GC (reduced)", &grid, &[5]);
    for m in Method::TABLE1 {
        assert!(table.contains(m.label()), "table missing {}", m.label());
    }

    // Shape: our methods lead, SrcOnly trails badly — Table I's outcome.
    let mut means = method_means(&grid, 5);
    means.sort_by(|a, b| b.1.total_cmp(&a.1));
    let score = |m: Method| {
        means
            .iter()
            .find(|&&(x, _)| x == m)
            .map(|&(_, f)| f)
            .unwrap()
    };
    let top3: Vec<Method> = means.iter().take(3).map(|&(m, _)| m).collect();
    assert!(
        top3.contains(&Method::Fs) || top3.contains(&Method::FsGan),
        "FS/FS+GAN should rank in the top 3, got {top3:?} (full ranking {means:?})"
    );
    assert!(
        score(Method::Fs) > score(Method::SourceAndTarget),
        "FS must beat S&T: {means:?}"
    );
    // The margin is over the Monte-Carlo-averaged serving path (a single
    // lucky generator draw can no longer inflate it); ~15 points measured
    // on this preset, gated with slack for the quick budget's variance.
    assert!(
        score(Method::FsGan) > score(Method::SrcOnly) + 12.0,
        "FS+GAN must strongly mitigate the drift: {means:?}"
    );
}
