//! The registry contract: every registered [`Method`] must go
//! fit → predict → persist → restore → predict through the uniform
//! [`DriftMitigator`] interface, on both synthetic scenarios, and the
//! restored mitigator must predict bit-identically to the one that was
//! trained. This is what lets serving treat all eighteen methods as one
//! `Box<dyn DriftMitigator>`.

use fsda::core::adapter::{peek_meta, AdapterConfig, Budget};
use fsda::core::pipeline;
use fsda::core::Method;
use fsda::data::fewshot::{few_shot_indices, few_shot_subset};
use fsda::data::synth5gc::Synth5gc;
use fsda::data::synth5gipc::{Synth5gipc, NUM_GROUPS};
use fsda::data::Dataset;
use fsda::linalg::{Matrix, SeededRng};
use fsda::models::ClassifierKind;
use std::collections::BTreeMap;

/// Every method the registry serves.
fn all_methods() -> Vec<Method> {
    Method::ALL.to_vec()
}

/// A deliberately tiny budget: the contract is about the interface, not
/// about model quality, so every knob is at the minimum that still trains.
fn tiny_config() -> AdapterConfig {
    AdapterConfig {
        classifier: ClassifierKind::Mlp,
        budget: Budget {
            nn_epochs: 3,
            gan_epochs: 20,
            emb_epochs: 3,
            forest_trees: 5,
            gbdt_rounds: 3,
            threads: 2,
        },
        ..AdapterConfig::default()
    }
}

/// Runs one method through the full mitigator life cycle and checks the
/// restored copy against the original.
fn exercise(method: Method, source: &Dataset, shots: &Dataset, test: &Matrix, seed: u64) {
    let config = tiny_config();
    let mut mitigator = method.build(&config, seed);
    assert_eq!(mitigator.method(), method);
    assert!(!mitigator.is_fitted(), "{method}: fitted before fit");

    mitigator
        .fit(source, shots)
        .unwrap_or_else(|e| panic!("{method}: fit failed: {e}"));
    assert!(mitigator.is_fitted(), "{method}: unfitted after fit");
    assert_eq!(mitigator.num_classes(), source.num_classes());

    let pred = mitigator.predict(test);
    assert_eq!(pred.len(), test.rows(), "{method}: wrong prediction count");

    let bytes = mitigator
        .to_bytes()
        .unwrap_or_else(|e| panic!("{method}: to_bytes failed: {e}"));
    let restored =
        pipeline::restore(&bytes).unwrap_or_else(|e| panic!("{method}: restore failed: {e}"));
    assert_eq!(
        restored.method(),
        method,
        "{method}: identity lost on restore"
    );
    assert!(restored.is_fitted(), "{method}: restored copy unfitted");
    assert_eq!(restored.num_classes(), mitigator.num_classes());
    assert_eq!(
        restored.predict(test),
        pred,
        "{method}: restored predictions drifted"
    );
    assert_eq!(
        restored
            .to_bytes()
            .unwrap_or_else(|e| panic!("{method}: re-encode failed: {e}")),
        bytes,
        "{method}: re-encoding the restored mitigator changed the bytes"
    );
    assert!(!restored.health().is_empty());
}

#[test]
fn every_method_round_trips_on_5gc() {
    let bundle = Synth5gc::small().generate(61).unwrap();
    let mut rng = SeededRng::new(62);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    let test = bundle.target_test.features();
    for method in all_methods() {
        exercise(method, &bundle.source_train, &shots, test, 63);
    }
}

/// The persistence kind byte partitions the registry: every method writes
/// exactly one kind, every kind restores through exactly one code path,
/// and the restored mitigator keeps the method identity. This pins the
/// `restore` dispatch table — a new method cannot silently reuse (or
/// orphan) a kind byte.
#[test]
fn every_persistence_kind_maps_to_documented_methods() {
    let bundle = Synth5gc::small().generate(71).unwrap();
    let mut rng = SeededRng::new(72);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    let config = tiny_config();

    let mut by_kind: BTreeMap<u8, Vec<Method>> = BTreeMap::new();
    for method in all_methods() {
        let mut mitigator = method.build(&config, 73);
        mitigator
            .fit(&bundle.source_train, &shots)
            .unwrap_or_else(|e| panic!("{method}: fit failed: {e}"));
        let bytes = mitigator.to_bytes().unwrap();
        let (kind, _, _) = peek_meta(&bytes).unwrap();
        by_kind.entry(kind).or_default().push(method);
        let restored = pipeline::restore(&bytes).unwrap();
        assert_eq!(
            restored.method(),
            method,
            "kind {kind} restored to the wrong method"
        );
    }

    let expected: &[(u8, &[Method])] = &[
        (0, &[Method::Fs]),
        (
            1,
            &[
                Method::FsGan,
                Method::FsNoCond,
                Method::FsVae,
                Method::FsVanillaAe,
            ],
        ),
        (
            2,
            &[
                Method::Cmt,
                Method::Icd,
                Method::SrcOnly,
                Method::TarOnly,
                Method::SourceAndTarget,
                Method::FineTune,
                Method::Coral,
            ],
        ),
        (3, &[Method::Dann]),
        (4, &[Method::Scl]),
        (5, &[Method::MatchNet]),
        (6, &[Method::ProtoNet]),
        (7, &[Method::Fada]),
        (8, &[Method::Fmaa]),
    ];
    assert_eq!(
        by_kind.len(),
        expected.len(),
        "kind set drifted: {by_kind:?}"
    );
    for (kind, methods) in expected {
        let mut got = by_kind.get(kind).cloned().unwrap_or_default();
        got.sort_by_key(|m| m.slug().to_string());
        let mut want = methods.to_vec();
        want.sort_by_key(|m| m.slug().to_string());
        assert_eq!(got, want, "kind {kind} maps to the wrong method set");
    }
}

#[test]
fn every_method_round_trips_on_5gipc() {
    let bundle = Synth5gipc::small().generate(64).unwrap();
    let mut rng = SeededRng::new(65);
    let idx = few_shot_indices(&bundle.target_pool_groups, NUM_GROUPS, 5, &mut rng).unwrap();
    let shots = bundle.target_pool.subset(&idx);
    let test = bundle.target_test.features();
    for method in all_methods() {
        exercise(method, &bundle.source_train, &shots, test, 66);
    }
}
