//! Integration test for the paper's §VI-F / Table III property: the
//! network-management model is trained **once** on source data; evolving
//! drift is absorbed by re-fitting only the FS+GAN front-end.

use fsda::core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda::data::fewshot::few_shot_indices;
use fsda::data::synth5gipc::{Synth5gipc, NUM_GROUPS};
use fsda::linalg::SeededRng;
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;

#[test]
fn one_classifier_survives_two_drifts() {
    let bundle = Synth5gipc::small().generate_three_domain(1).unwrap();
    let cfg = AdapterConfig {
        classifier: ClassifierKind::Xgb,
        budget: Budget::quick(),
        ..AdapterConfig::default()
    };
    let mut rng = SeededRng::new(2);

    let idx1 = few_shot_indices(&bundle.target1_pool_groups, NUM_GROUPS, 10, &mut rng).unwrap();
    let shots1 = bundle.target1_pool.subset(&idx1);
    let adapter1 = FsGanAdapter::fit(&bundle.source_train, &shots1, &cfg, 3).unwrap();

    let idx2 = few_shot_indices(&bundle.target2_pool_groups, NUM_GROUPS, 10, &mut rng).unwrap();
    let shots2 = bundle.target2_pool.subset(&idx2);
    let adapter2 = FsGanAdapter::fit(&bundle.source_train, &shots2, &cfg, 4).unwrap();

    // Matched adapters work on their own domains.
    let f11 = macro_f1(
        bundle.target1_test.labels(),
        &adapter1.predict(bundle.target1_test.features()),
        2,
    );
    let f22 = macro_f1(
        bundle.target2_test.labels(),
        &adapter2.predict(bundle.target2_test.features()),
        2,
    );
    assert!(f11 > 0.55, "adapter1 on target1: {f11:.3}");
    assert!(f22 > 0.55, "adapter2 on target2: {f22:.3}");

    // Cross-use stays competitive: the variant sets largely overlap
    // (Table III's observation), so an adapter fit on the other target
    // still mitigates most of the drift.
    let f12 = macro_f1(
        bundle.target2_test.labels(),
        &adapter1.predict(bundle.target2_test.features()),
        2,
    );
    assert!(
        f12 > 0.4,
        "adapter1 cross-applied to target2 should stay functional: {f12:.3}"
    );
}

#[test]
fn variant_sets_of_successive_targets_overlap() {
    let bundle = Synth5gipc::small().generate_three_domain(5).unwrap();
    let s1: std::collections::BTreeSet<_> = bundle.variant_target1.iter().collect();
    let s2: std::collections::BTreeSet<_> = bundle.variant_target2.iter().collect();
    let shared = s1.intersection(&s2).count();
    assert!(
        shared * 2 > s1.len(),
        "majority of variant features shared: {shared}/{}",
        s1.len()
    );
}
