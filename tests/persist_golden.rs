//! Golden-fixture tests: a trained FS+GAN pipeline committed to
//! `tests/fixtures/` must keep loading byte-for-byte and reproducing its
//! recorded predictions forever — any format or numeric change that breaks
//! old artifacts fails here. The negative half damages the fixture in every
//! structural way (magic, version, checksum, truncation, per-section
//! corruption) and demands a typed refusal, never a panic or a wrong model.
//!
//! Regenerate the fixtures after an *intentional* format change with:
//!
//! ```text
//! cargo test --test persist_golden -- --ignored regenerate
//! ```

use fsda::core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda::core::persist::{
    crc32, read_container, write_container, PersistError, FORMAT_VERSION, TAG_CLSF, TAG_FSEP,
    TAG_META, TAG_NORM, TAG_RECN,
};
use fsda::data::fewshot::few_shot_indices;
use fsda::data::synth5gipc::{Synth5gipc, NUM_GROUPS};
use fsda::data::Dataset;
use fsda::linalg::{Matrix, SeededRng};
use fsda::models::ClassifierKind;

/// Rows of the evaluation set pinned by the golden predictions file.
const EVAL_ROWS: usize = 64;

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name)).unwrap_or_else(|e| {
        panic!(
            "missing fixture {name} ({e}); regenerate with \
             `cargo test --test persist_golden -- --ignored regenerate`"
        )
    })
}

/// The deterministic evaluation slice the golden predictions refer to.
fn eval_features() -> (Matrix, Dataset) {
    let bundle = Synth5gipc::small().generate(90).unwrap();
    let idx: Vec<usize> = (0..EVAL_ROWS).collect();
    (
        bundle.target_test.features().select_rows(&idx),
        bundle.target_test,
    )
}

/// Trains the pipeline the committed fixture was generated from. Only the
/// ignored regeneration test pays this cost; the checks just read files.
fn train_fixture_adapter() -> FsGanAdapter {
    let bundle = Synth5gipc::small().generate(90).unwrap();
    let mut rng = SeededRng::new(91);
    let idx = few_shot_indices(&bundle.target_pool_groups, NUM_GROUPS, 5, &mut rng).unwrap();
    let shots = bundle.target_pool.subset(&idx);
    let cfg = AdapterConfig {
        classifier: ClassifierKind::Xgb,
        budget: Budget {
            nn_epochs: 10,
            gan_epochs: 60,
            emb_epochs: 10,
            forest_trees: 10,
            gbdt_rounds: 5,
            threads: 2,
        },
        ..AdapterConfig::default()
    };
    FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 92).unwrap()
}

#[test]
#[ignore = "rewrites the committed golden fixtures; run only after an intentional format change"]
fn regenerate() {
    let adapter = train_fixture_adapter();
    std::fs::create_dir_all(fixture_path("")).unwrap();
    adapter.save(fixture_path("fsgan_5gipc_v1.fsda")).unwrap();
    let (x, _) = eval_features();
    let pred = adapter.predict_batch(&x, Some(1));
    let lines: Vec<String> = pred.iter().map(|p| p.to_string()).collect();
    std::fs::write(
        fixture_path("fsgan_5gipc_v1.predictions.txt"),
        lines.join("\n") + "\n",
    )
    .unwrap();
}

#[test]
fn golden_artifact_reencodes_byte_identically() {
    let bytes = read_fixture("fsgan_5gipc_v1.fsda");
    let adapter = FsGanAdapter::from_bytes(&bytes).unwrap();
    assert_eq!(
        adapter.to_bytes().unwrap(),
        bytes,
        "decode -> encode must reproduce the committed artifact exactly"
    );
}

#[test]
fn golden_artifact_reproduces_committed_predictions() {
    let bytes = read_fixture("fsgan_5gipc_v1.fsda");
    let adapter = FsGanAdapter::from_bytes(&bytes).unwrap();
    let (x, _) = eval_features();
    let expected: Vec<usize> = String::from_utf8(read_fixture("fsgan_5gipc_v1.predictions.txt"))
        .unwrap()
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(expected.len(), EVAL_ROWS);
    // Thread count must not matter for the served predictions either.
    for threads in [1, 2, 4] {
        assert_eq!(
            adapter.predict_batch(&x, Some(threads)),
            expected,
            "threads = {threads}"
        );
    }
}

#[test]
fn golden_artifact_rejects_bad_magic() {
    let mut bytes = read_fixture("fsgan_5gipc_v1.fsda");
    bytes[0] ^= 0xFF;
    assert!(matches!(
        read_container(&bytes),
        Err(PersistError::BadMagic)
    ));
    assert!(FsGanAdapter::from_bytes(&bytes).is_err());
}

#[test]
fn golden_artifact_rejects_future_version() {
    let mut bytes = read_fixture("fsgan_5gipc_v1.fsda");
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    // Recompute the trailer so only the version check can fire.
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
    match read_container(&bytes) {
        Err(PersistError::Version { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn golden_artifact_rejects_payload_corruption() {
    let mut bytes = read_fixture("fsgan_5gipc_v1.fsda");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    assert!(matches!(
        read_container(&bytes),
        Err(PersistError::Corrupt(_))
    ));
    assert!(FsGanAdapter::from_bytes(&bytes).is_err());
}

#[test]
fn golden_artifact_rejects_truncation() {
    let bytes = read_fixture("fsgan_5gipc_v1.fsda");
    // Cuts inside the header, the section table, the payload, and the
    // checksum trailer — none may parse.
    for cut in [
        0,
        3,
        11,
        40,
        113,
        bytes.len() / 2,
        bytes.len() - 5,
        bytes.len() - 1,
    ] {
        assert!(
            read_container(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes parsed"
        );
        assert!(FsGanAdapter::from_bytes(&bytes[..cut]).is_err());
    }
    // A short header is reported as truncation, not corruption.
    assert!(matches!(
        read_container(&bytes[..3]),
        Err(PersistError::Truncated(_))
    ));
}

#[test]
fn every_section_is_independently_validated() {
    let bytes = read_fixture("fsgan_5gipc_v1.fsda");
    let sections: Vec<([u8; 4], Vec<u8>)> = read_container(&bytes)
        .unwrap()
        .iter()
        .map(|(tag, payload)| (*tag, payload.to_vec()))
        .collect();
    assert_eq!(sections.len(), 5);

    for &tag in &[TAG_META, TAG_FSEP, TAG_NORM, TAG_RECN, TAG_CLSF] {
        let name = String::from_utf8_lossy(&tag).into_owned();

        // Dropping the section entirely: a valid container, but the
        // pipeline refuses to load without it.
        let dropped: Vec<_> = sections
            .iter()
            .filter(|(t, _)| *t != tag)
            .cloned()
            .collect();
        assert!(
            FsGanAdapter::from_bytes(&write_container(&dropped)).is_err(),
            "loaded without section {name}"
        );

        // Cutting the section's last byte (with a recomputed, valid
        // container around it): the section decoder must notice.
        let cut: Vec<_> = sections
            .iter()
            .map(|(t, p)| {
                let p = if *t == tag {
                    p[..p.len() - 1].to_vec()
                } else {
                    p.clone()
                };
                (*t, p)
            })
            .collect();
        assert!(
            FsGanAdapter::from_bytes(&write_container(&cut)).is_err(),
            "loaded section {name} with its last byte cut"
        );

        // A stray trailing byte inside the section: the decoder checks it
        // consumed the section exactly.
        let padded: Vec<_> = sections
            .iter()
            .map(|(t, p)| {
                let mut p = p.clone();
                if *t == tag {
                    p.push(0);
                }
                (*t, p)
            })
            .collect();
        assert!(
            FsGanAdapter::from_bytes(&write_container(&padded)).is_err(),
            "loaded section {name} with a stray trailing byte"
        );
    }
}
