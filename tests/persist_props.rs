//! Property tests for the artifact codec: every encode → decode → encode
//! cycle must be byte-identical, `f64` values survive as exact bit
//! patterns, and structural damage to a container never parses.

use fsda::core::persist::{
    crc32, read_container, read_normalizer, read_state_dict, write_container, write_normalizer,
    write_state_dict, Decoder, Encoder, PersistError,
};
use fsda::data::normalize::{NormKind, Normalizer};
use fsda::linalg::{Matrix, SeededRng};
use fsda::nn::state::StateDict;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Integers of every width round-trip exactly.
    #[test]
    fn integers_round_trip(a in 0u64..u64::MAX, b in 0u32..u32::MAX, c in 0usize..1 << 48) {
        let mut enc = Encoder::new();
        enc.put_u64(a);
        enc.put_u32(b);
        enc.put_usize(c);
        enc.put_u8((a % 256) as u8);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.take_u64().unwrap(), a);
        prop_assert_eq!(dec.take_u32().unwrap(), b);
        prop_assert_eq!(dec.take_usize().unwrap(), c);
        prop_assert_eq!(dec.take_u8().unwrap(), (a % 256) as u8);
        prop_assert!(dec.expect_end().is_ok());
    }

    /// `f64` survives as its exact IEEE-754 bit pattern — including NaN
    /// payloads, infinities, subnormals, and signed zeros.
    #[test]
    fn f64_round_trips_every_bit_pattern(bits in 0u64..u64::MAX) {
        let v = f64::from_bits(bits);
        let mut enc = Encoder::new();
        enc.put_f64(v);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.take_f64().unwrap().to_bits(), bits);
    }

    /// Length-prefixed vectors and matrices re-encode byte-identically.
    #[test]
    fn sequences_reencode_byte_identically(
        seed in 0u64..1 << 40,
        len in 0usize..40,
        rows in 1usize..8,
        cols in 1usize..8,
    ) {
        let mut rng = SeededRng::new(seed);
        let xs: Vec<f64> = (0..len).map(|_| rng.normal(0.0, 3.0)).collect();
        let idx: Vec<usize> = (0..len).map(|_| rng.index(1000)).collect();
        let m = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0));

        let mut enc = Encoder::new();
        enc.put_f64s(&xs);
        enc.put_usizes(&idx);
        enc.put_matrix(&m);
        enc.put_bool(len % 2 == 0);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        let xs2 = dec.take_f64s().unwrap();
        let idx2 = dec.take_usizes().unwrap();
        let m2 = dec.take_matrix().unwrap();
        let flag = dec.take_bool().unwrap();
        prop_assert!(dec.expect_end().is_ok());
        prop_assert_eq!(&m2, &m);
        prop_assert_eq!(flag, len % 2 == 0);

        let mut enc2 = Encoder::new();
        enc2.put_f64s(&xs2);
        enc2.put_usizes(&idx2);
        enc2.put_matrix(&m2);
        enc2.put_bool(flag);
        prop_assert_eq!(enc2.into_bytes(), bytes);
    }

    /// Containers round-trip: parsed sections re-pack to the same bytes.
    #[test]
    fn containers_reencode_byte_identically(
        seed in 0u64..1 << 40,
        num_sections in 0usize..5,
    ) {
        let mut rng = SeededRng::new(seed);
        let sections: Vec<([u8; 4], Vec<u8>)> = (0..num_sections)
            .map(|i| {
                let tag = [b'A' + i as u8, b'B', b'C', b'D'];
                let len = rng.index(64);
                let payload: Vec<u8> = (0..len).map(|_| rng.index(256) as u8).collect();
                (tag, payload)
            })
            .collect();
        let bytes = write_container(&sections);
        let parsed = read_container(&bytes).unwrap();
        prop_assert_eq!(parsed.len(), sections.len());
        let repacked: Vec<([u8; 4], Vec<u8>)> = parsed
            .iter()
            .map(|(tag, payload)| (*tag, payload.to_vec()))
            .collect();
        prop_assert_eq!(write_container(&repacked), bytes);
    }

    /// Flipping any single byte of a container makes it unreadable: the
    /// checksum (or an earlier structural check) always catches it.
    #[test]
    fn any_single_byte_flip_is_detected(seed in 0u64..1 << 40, flip in 0u64..1 << 32) {
        let mut rng = SeededRng::new(seed);
        let payload: Vec<u8> = (0..rng.index(48)).map(|_| rng.index(256) as u8).collect();
        let mut bytes = write_container(&[(*b"PROP", payload)]);
        let pos = (flip as usize) % bytes.len();
        bytes[pos] ^= 1 + (flip >> 32) as u8 % 255;
        prop_assert!(read_container(&bytes).is_err(), "flip at {} parsed", pos);
    }

    /// Every strict prefix of a valid container fails to parse.
    #[test]
    fn truncated_containers_never_parse(seed in 0u64..1 << 40, cut in 0u64..1 << 32) {
        let mut rng = SeededRng::new(seed);
        let payload: Vec<u8> = (0..rng.index(48)).map(|_| rng.index(256) as u8).collect();
        let bytes = write_container(&[(*b"PROP", payload)]);
        let len = (cut as usize) % bytes.len();
        prop_assert!(read_container(&bytes[..len]).is_err(), "prefix of {} parsed", len);
    }

    /// The normalizer codec round-trips statistics bit-for-bit.
    #[test]
    fn normalizer_codec_round_trips(
        seed in 0u64..1 << 40,
        num_features in 1usize..24,
        zscore in 0u8..2,
    ) {
        let mut rng = SeededRng::new(seed);
        let kind = if zscore == 1 { NormKind::ZScore } else { NormKind::MinMaxSymmetric };
        let offset: Vec<f64> = (0..num_features).map(|_| rng.normal(0.0, 10.0)).collect();
        let scale: Vec<f64> = (0..num_features)
            .map(|_| rng.uniform_range(1e-6, 10.0))
            .collect();
        let n = Normalizer::from_parts(kind, offset, scale).unwrap();

        let mut enc = Encoder::new();
        write_normalizer(&mut enc, &n);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let n2 = read_normalizer(&mut dec).unwrap();
        prop_assert!(dec.expect_end().is_ok());
        prop_assert_eq!(n2.kind(), n.kind());
        prop_assert_eq!(n2.offset(), n.offset());
        prop_assert_eq!(n2.scale(), n.scale());

        let mut enc2 = Encoder::new();
        write_normalizer(&mut enc2, &n2);
        prop_assert_eq!(enc2.into_bytes(), bytes);
    }

    /// The state-dict codec round-trips network weights and buffers.
    #[test]
    fn state_dict_codec_round_trips(
        seed in 0u64..1 << 40,
        tensors in 0usize..4,
        buffers in 0usize..4,
    ) {
        let mut rng = SeededRng::new(seed);
        let ts: Vec<Matrix> = (0..tensors)
            .map(|_| {
                let (r, c) = (1 + rng.index(6), 1 + rng.index(6));
                Matrix::from_fn(r, c, |_, _| rng.normal(0.0, 1.0))
            })
            .collect();
        let bs: Vec<Matrix> = (0..buffers)
            .map(|_| {
                let n = rng.index(8);
                Matrix::from_fn(1, n, |_, _| rng.normal(0.0, 1.0))
            })
            .collect();
        let state = StateDict::from_parts(ts, bs);

        let mut enc = Encoder::new();
        write_state_dict(&mut enc, &state);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let state2 = read_state_dict(&mut dec).unwrap();
        prop_assert!(dec.expect_end().is_ok());
        prop_assert_eq!(&state2, &state);

        let mut enc2 = Encoder::new();
        write_state_dict(&mut enc2, &state2);
        prop_assert_eq!(enc2.into_bytes(), bytes);
    }

    /// CRC-32 is order-sensitive: swapping two different bytes changes it.
    #[test]
    fn crc_detects_transpositions(seed in 0u64..1 << 40, i in 0usize..64, j in 0usize..64) {
        let mut rng = SeededRng::new(seed);
        let data: Vec<u8> = (0..64).map(|_| rng.index(256) as u8).collect();
        prop_assume!(data[i] != data[j]);
        let mut swapped = data.clone();
        swapped.swap(i, j);
        prop_assert_ne!(crc32(&swapped), crc32(&data));
    }
}

/// A decoder over short input reports `Truncated`, never panics or wraps.
#[test]
fn decoder_truncation_is_an_error_not_a_panic() {
    for len in 0..7 {
        let bytes = vec![0u8; len];
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.take_u64(), Err(PersistError::Truncated(_))));
    }
}
