//! Train → save → load → adapt round trips through the on-disk artifact
//! format, on both synthetic scenarios. The reloaded pipeline must be
//! bit-identical to the one that was trained: same artifact bytes, same
//! predictions, same F1, and a batched reconstruction that matches the
//! per-sample reference loop at every thread count.

use fsda::core::adapter::{AdapterConfig, Budget, FsAdapter, FsGanAdapter};
use fsda::data::fewshot::{few_shot_indices, few_shot_subset};
use fsda::data::synth5gc::Synth5gc;
use fsda::data::synth5gipc::{Synth5gipc, NUM_GROUPS};
use fsda::linalg::SeededRng;
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;

/// A collision-free scratch path under the OS temp dir.
fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fsda-persist-{}-{name}", std::process::id()));
    p
}

struct TmpFile(std::path::PathBuf);

impl Drop for TmpFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn five_gc_pipeline_survives_disk_round_trip() {
    let bundle = Synth5gc::small().generate(41).unwrap();
    let mut rng = SeededRng::new(42);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 43).unwrap();

    let path = TmpFile(tmp_path("5gc.fsda"));
    adapter.save(&path.0).unwrap();
    let loaded = FsGanAdapter::load(&path.0).unwrap();

    // Re-encoding the loaded pipeline reproduces the exact file bytes.
    let on_disk = std::fs::read(&path.0).unwrap();
    assert_eq!(loaded.to_bytes().unwrap(), on_disk);

    // Predictions — and therefore F1 — are exactly those of the original.
    let x = bundle.target_test.features();
    let pred = adapter.predict(x);
    let pred_loaded = loaded.predict(x);
    assert_eq!(pred_loaded, pred);
    let f1 = macro_f1(bundle.target_test.labels(), &pred, 16);
    let f1_loaded = macro_f1(bundle.target_test.labels(), &pred_loaded, 16);
    assert_eq!(
        f1_loaded.to_bits(),
        f1.to_bits(),
        "F1 must match bit-for-bit"
    );

    // The serving path: batched reconstruction of the loaded adapter is
    // bit-identical to the original's per-sample reference loop at every
    // thread count.
    let scalar = adapter.reconstruct_scalar(x);
    for threads in [1, 2, 4] {
        assert_eq!(
            loaded.reconstruct_batch(x, Some(threads)),
            scalar,
            "threads = {threads}"
        );
        assert_eq!(
            loaded.predict_batch(x, Some(threads)),
            adapter.predict_batch(x, Some(1)),
            "threads = {threads}"
        );
    }
}

#[test]
fn five_gipc_pipeline_survives_disk_round_trip() {
    let bundle = Synth5gipc::small().generate(44).unwrap();
    let mut rng = SeededRng::new(45);
    let idx = few_shot_indices(&bundle.target_pool_groups, NUM_GROUPS, 5, &mut rng).unwrap();
    let shots = bundle.target_pool.subset(&idx);
    let cfg = AdapterConfig {
        classifier: ClassifierKind::Xgb,
        budget: Budget::quick(),
        ..AdapterConfig::default()
    };
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 46).unwrap();

    let path = TmpFile(tmp_path("5gipc.fsda"));
    adapter.save(&path.0).unwrap();
    let loaded = FsGanAdapter::load(&path.0).unwrap();
    assert_eq!(loaded.to_bytes().unwrap(), adapter.to_bytes().unwrap());

    let x = bundle.target_test.features();
    let pred = adapter.predict(x);
    let pred_loaded = loaded.predict(x);
    assert_eq!(pred_loaded, pred);
    let f1 = macro_f1(bundle.target_test.labels(), &pred, 2);
    let f1_loaded = macro_f1(bundle.target_test.labels(), &pred_loaded, 2);
    assert_eq!(
        f1_loaded.to_bits(),
        f1.to_bits(),
        "F1 must match bit-for-bit"
    );

    let scalar = adapter.reconstruct_scalar(x);
    for threads in [1, 2, 4] {
        assert_eq!(
            loaded.reconstruct_batch(x, Some(threads)),
            scalar,
            "threads = {threads}"
        );
    }
}

#[test]
fn fs_adapter_survives_disk_round_trip() {
    let bundle = Synth5gc::small().generate(47).unwrap();
    let mut rng = SeededRng::new(48);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::Xgb);
    let adapter = FsAdapter::fit(&bundle.source_train, &shots, &cfg, 49).unwrap();

    let path = TmpFile(tmp_path("fs.fsda"));
    adapter.save(&path.0).unwrap();
    let loaded = FsAdapter::load(&path.0).unwrap();
    assert_eq!(loaded.to_bytes().unwrap(), adapter.to_bytes().unwrap());

    let x = bundle.target_test.features();
    assert_eq!(loaded.predict(x), adapter.predict(x));
    assert_eq!(
        loaded.separation().variant(),
        adapter.separation().variant()
    );

    // Loading an FS artifact as an FS+GAN pipeline is refused.
    assert!(FsGanAdapter::load(&path.0).is_err());
}
