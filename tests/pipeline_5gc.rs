//! End-to-end integration test: the full FS+GAN pipeline on the 5GC
//! failure-classification scenario, checking the qualitative shape of
//! Table I (who wins, in what order) at reduced scale.

use fsda::core::adapter::Budget;
use fsda::core::experiment::{run_cell, ExperimentConfig, Scenario};
use fsda::core::method::Method;
use fsda::data::synth5gc::Synth5gc;
use fsda::models::ClassifierKind;

fn scenario(seed: u64) -> Scenario {
    let b = Synth5gc::small().generate(seed).unwrap();
    Scenario {
        name: "5GC".into(),
        source: b.source_train,
        target_pool: b.target_pool,
        pool_groups: None,
        num_groups: 16,
        target_test: b.target_test,
    }
}

fn config() -> ExperimentConfig {
    ExperimentConfig {
        shots: vec![5],
        repeats: 1,
        budget: Budget::quick(),
        seed: 11,
        parallel: false,
    }
}

#[test]
fn method_ordering_matches_paper_shape() {
    // The MLP column shows the paper's mechanism most directly at reduced
    // scale: a source-trained network saturates on the shifted features.
    // (Tree ensembles need the full 442-feature scale for the same degree
    // of collapse — their per-node feature sampling dilutes the damage at
    // 70 features; the table1 bench covers that regime.)
    let s = scenario(1);
    let cfg = config();
    let f1 = |method| {
        run_cell(&s, method, ClassifierKind::Mlp, 5, &cfg)
            .unwrap()
            .mean_f1
    };
    let src_only = f1(Method::SrcOnly);
    let snt = f1(Method::SourceAndTarget);
    let fs = f1(Method::Fs);
    let fs_gan = f1(Method::FsGan);

    // The paper's central ordering: SrcOnly degrades badly; S&T helps; FS
    // and FS+GAN dominate.
    assert!(
        src_only < 0.70,
        "SrcOnly must degrade under drift: {src_only:.3}"
    );
    assert!(snt > src_only, "S&T ({snt:.3}) > SrcOnly ({src_only:.3})");
    assert!(fs > snt, "FS ({fs:.3}) > S&T ({snt:.3})");
    assert!(
        fs_gan > src_only + 0.15,
        "FS+GAN ({fs_gan:.3}) must strongly mitigate the drift vs SrcOnly ({src_only:.3})"
    );
    assert!(
        fs_gan + 0.08 > fs,
        "FS+GAN ({fs_gan:.3}) should be at least on par with FS ({fs:.3})"
    );
}

#[test]
fn f1_improves_with_more_shots() {
    let s = scenario(2);
    let mut cfg = config();
    cfg.shots = vec![1, 10];
    let at = |k| {
        run_cell(&s, Method::Fs, ClassifierKind::RandomForest, k, &cfg)
            .unwrap()
            .mean_f1
    };
    let f1_1 = at(1);
    let f1_10 = at(10);
    assert!(
        f1_10 + 0.05 > f1_1,
        "FS should not degrade with more shots: k=1 {f1_1:.3}, k=10 {f1_10:.3}"
    );
}

#[test]
fn source_only_is_fine_in_domain() {
    // The paper's sanity check: SrcOnly cross-validated on the source
    // domain is excellent — the target failure is pure drift.
    use fsda::core::adapter::build_classifier;
    use fsda::data::fewshot::stratified_split;
    use fsda::data::normalize::{NormKind, Normalizer};
    use fsda::linalg::SeededRng;
    use fsda::models::metrics::macro_f1;

    let b = Synth5gc::small().generate(3).unwrap();
    let mut rng = SeededRng::new(4);
    let (train, test) = stratified_split(&b.source_train, 0.75, &mut rng).unwrap();
    let norm = Normalizer::fit(train.features(), NormKind::ZScore);
    let mut model = build_classifier(ClassifierKind::Mlp, 5, &Budget::quick());
    model
        .fit(&norm.transform(train.features()), train.labels(), 16)
        .unwrap();
    let pred = model.predict(&norm.transform(test.features()));
    let f1 = macro_f1(test.labels(), &pred, 16);
    assert!(f1 > 0.85, "in-domain source F1 should be high: {f1:.3}");
}

#[test]
fn all_model_agnostic_classifiers_work_with_fs_gan() {
    let s = scenario(4);
    let cfg = config();
    for kind in ClassifierKind::ALL {
        let cell = run_cell(&s, Method::FsGan, kind, 5, &cfg).unwrap();
        assert!(
            cell.mean_f1 > 0.2,
            "FS+GAN with {kind} should stay functional: {:.3}",
            cell.mean_f1
        );
    }
}
