//! End-to-end integration test: the 5GIPC fault-detection scenario with
//! the paper's GMM domain construction and fault-type-grouped few-shot
//! sampling.

use fsda::core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda::core::experiment::{run_cell, ExperimentConfig, Scenario};
use fsda::core::method::Method;
use fsda::data::fewshot::few_shot_indices;
use fsda::data::synth5gipc::{Synth5gipc, NUM_GROUPS};
use fsda::linalg::SeededRng;
use fsda::models::metrics::macro_f1;
use fsda::models::ClassifierKind;

#[test]
fn gmm_domain_construction_recovers_regimes() {
    let (bundle, agreement) = Synth5gipc::small().generate_clustered(1).unwrap();
    assert!(
        agreement > 0.9,
        "GMM split should match generation domains: {agreement}"
    );
    assert_eq!(bundle.source_train.num_classes(), 2);
}

#[test]
fn group_based_few_shot_and_adaptation() {
    let bundle = Synth5gipc::small().generate(2).unwrap();
    let mut rng = SeededRng::new(3);
    // Few-shot per fault *type* (5 groups), not per binary label.
    let idx = few_shot_indices(&bundle.target_pool_groups, NUM_GROUPS, 5, &mut rng).unwrap();
    assert_eq!(idx.len(), 25);
    let shots = bundle.target_pool.subset(&idx);

    let cfg = AdapterConfig {
        classifier: ClassifierKind::Xgb,
        budget: Budget::quick(),
        ..AdapterConfig::default()
    };
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 4).unwrap();
    let pred = adapter.predict(bundle.target_test.features());
    let f1 = macro_f1(bundle.target_test.labels(), &pred, 2);
    assert!(f1 > 0.55, "FS+GAN fault detection should work: {f1:.3}");
}

#[test]
fn scenario_runner_with_custom_groups() {
    let bundle = Synth5gipc::small().generate(5).unwrap();
    let scenario = Scenario {
        name: "5GIPC".into(),
        source: bundle.source_train,
        target_pool: bundle.target_pool,
        pool_groups: Some(bundle.target_pool_groups),
        num_groups: NUM_GROUPS,
        target_test: bundle.target_test,
    };
    let cfg = ExperimentConfig {
        shots: vec![5],
        repeats: 1,
        budget: Budget::quick(),
        seed: 6,
        parallel: false,
    };
    let src = run_cell(
        &scenario,
        Method::SrcOnly,
        ClassifierKind::RandomForest,
        5,
        &cfg,
    )
    .unwrap()
    .mean_f1;
    let fs = run_cell(&scenario, Method::Fs, ClassifierKind::RandomForest, 5, &cfg)
        .unwrap()
        .mean_f1;
    assert!(
        fs > src,
        "FS ({fs:.3}) should beat SrcOnly ({src:.3}) on 5GIPC"
    );
}

#[test]
fn variant_detection_grows_with_shots() {
    // §VI-C: FS identified 23/31/37 variant features at 1/5/10 shots on
    // 5GIPC — more shots, more detections. Check monotonicity (with slack).
    use fsda::core::fs::{FeatureSeparation, FsConfig};
    let bundle = Synth5gipc::small().generate(7).unwrap();
    let mut counts = Vec::new();
    for k in [1usize, 10] {
        let mut rng = SeededRng::new(8);
        let idx = few_shot_indices(&bundle.target_pool_groups, NUM_GROUPS, k, &mut rng).unwrap();
        let shots = bundle.target_pool.subset(&idx);
        let fs =
            FeatureSeparation::fit(&bundle.source_train, &shots, &FsConfig::default()).unwrap();
        counts.push(fs.variant().len());
    }
    assert!(
        counts[1] + 2 >= counts[0],
        "variant detections should not shrink with more shots: {counts:?}"
    );
}
