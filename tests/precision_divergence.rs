//! The precision-policy contract of the inference plane:
//!
//! 1. `F64Exact` is the default everywhere and is **bit-identical** to the
//!    precision-oblivious entry points, for every reconstructor and
//!    classifier family — the fast path may never perturb the exact one.
//! 2. `F32Fast` stays within a small divergence envelope of the exact
//!    path (the single-precision kernels only touch the network forward
//!    passes; separation/normalization arithmetic stays in `f64`), and on
//!    the well-separated synthetic fixtures it flips **zero** hard
//!    predictions.
//! 3. Both properties survive persist → restore: the inference plan is
//!    never serialized, it is recompiled from the restored weights, and
//!    the rebuilt plan reproduces the original plan's output bit for bit
//!    at both precisions.

use fsda::core::adapter::{AdapterConfig, Budget, FsGanAdapter, ReconKind};
use fsda::core::{DriftMitigator, InferPrecision};
use fsda::data::fewshot::few_shot_subset;
use fsda::data::synth5gc::Synth5gc;
use fsda::data::Dataset;
use fsda::linalg::{Matrix, SeededRng};
use fsda::models::ClassifierKind;

/// Divergence bound for the f32 forward path on reconstructed features.
/// Activations are O(1) (tanh heads, normalized inputs), so accumulated
/// single-precision rounding across the small fully-connected stacks stays
/// orders of magnitude below this.
const F32_ABS_TOL: f64 = 1e-3;

fn tiny_config() -> AdapterConfig {
    AdapterConfig {
        budget: Budget {
            nn_epochs: 4,
            gan_epochs: 25,
            emb_epochs: 3,
            forest_trees: 5,
            gbdt_rounds: 3,
            threads: 2,
        },
        ..AdapterConfig::default()
    }
}

fn fixture() -> (Dataset, Dataset, Matrix) {
    let bundle = Synth5gc::small().generate(31).expect("bundle");
    let mut rng = SeededRng::new(5);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).expect("shots");
    let probe = bundle
        .target_test
        .features()
        .select_rows(&(0..48).collect::<Vec<_>>());
    (bundle.source_train, shots, probe)
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape());
    let mut worst = 0.0f64;
    for r in 0..a.rows() {
        for (x, y) in a.row(r).iter().zip(b.row(r)) {
            worst = worst.max((x - y).abs());
        }
    }
    worst
}

fn exercise(adapter: &FsGanAdapter, probe: &Matrix, label: &str) {
    // (1) The exact precision is bit-identical to the oblivious path.
    let baseline = adapter.reconstruct_batch(probe, Some(2));
    let exact = adapter.reconstruct_batch_with(probe, Some(2), InferPrecision::F64Exact);
    assert_eq!(baseline, exact, "{label}: F64Exact must not perturb output");
    assert_eq!(
        adapter.predict_batch(probe, Some(2)),
        adapter.predict_batch_with(probe, Some(2), InferPrecision::F64Exact),
        "{label}: F64Exact predictions must match the default path"
    );

    // (2) The fast path stays inside the divergence envelope and flips no
    // hard predictions on this fixture.
    let fast = adapter.reconstruct_batch_with(probe, Some(2), InferPrecision::F32Fast);
    let diff = max_abs_diff(&baseline, &fast);
    assert!(
        diff < F32_ABS_TOL,
        "{label}: f32 divergence {diff:e} exceeds {F32_ABS_TOL:e}"
    );
    assert_eq!(
        adapter.predict_batch_with(probe, Some(2), InferPrecision::F32Fast),
        adapter.predict_batch(probe, Some(2)),
        "{label}: f32 fast path flipped a prediction"
    );

    // (3) Persist → restore → plan rebuild: the recompiled plan serves bit
    // for bit at both precisions.
    let bytes = DriftMitigator::to_bytes(adapter).expect("to_bytes");
    let restored = FsGanAdapter::from_bytes(&bytes).expect("restore");
    assert_eq!(
        restored.reconstruct_batch_with(probe, Some(2), InferPrecision::F64Exact),
        exact,
        "{label}: restored exact path diverged"
    );
    assert_eq!(
        restored.reconstruct_batch_with(probe, Some(2), InferPrecision::F32Fast),
        fast,
        "{label}: restored f32 plan diverged from the original plan"
    );
}

#[test]
fn all_reconstructor_kinds_respect_the_precision_contract() {
    let (source, shots, probe) = fixture();
    for (i, recon) in [
        ReconKind::Gan,
        ReconKind::GanNoCond,
        ReconKind::Vae,
        ReconKind::VanillaAe,
    ]
    .into_iter()
    .enumerate()
    {
        let config = tiny_config().with_recon(recon);
        let adapter =
            FsGanAdapter::fit(&source, &shots, &config, 40 + i as u64).expect("fit reconstructor");
        exercise(&adapter, &probe, &format!("{recon:?}"));
    }
}

#[test]
fn all_classifier_kinds_respect_the_precision_contract() {
    let (source, shots, probe) = fixture();
    for (i, kind) in ClassifierKind::ALL.into_iter().enumerate() {
        let config = tiny_config().with_classifier(kind);
        let adapter =
            FsGanAdapter::fit(&source, &shots, &config, 60 + i as u64).expect("fit classifier");
        exercise(&adapter, &probe, kind.label());
    }
}

/// The adversarial baselines serve through plan-compiled heads too: the
/// exact precision is bit-identical to the oblivious entry points, the
/// fast path flips no hard predictions on the well-separated fixture, and
/// both properties survive persist → restore (the plan is recompiled from
/// the restored weights, never serialized).
#[test]
fn adversarial_baselines_respect_the_precision_contract() {
    let (source, shots, probe) = fixture();
    for (i, method) in [fsda::core::Method::Fada, fsda::core::Method::Fmaa]
        .into_iter()
        .enumerate()
    {
        let label = method.label();
        let mut mitigator = method.build(&tiny_config(), 80 + i as u64);
        mitigator
            .fit(&source, &shots)
            .unwrap_or_else(|e| panic!("{label}: fit failed: {e}"));

        let baseline = mitigator.predict_batch(&probe, Some(2));
        assert_eq!(
            mitigator.predict_batch_with(&probe, Some(2), InferPrecision::F64Exact),
            baseline,
            "{label}: F64Exact predictions must match the default path"
        );
        assert_eq!(
            mitigator.predict_batch_with(&probe, Some(2), InferPrecision::F32Fast),
            baseline,
            "{label}: f32 fast path flipped a prediction"
        );

        let guard = fsda::core::GuardConfig::default();
        assert_eq!(
            mitigator
                .try_predict_batch_with(&probe, Some(2), &guard, InferPrecision::F32Fast)
                .unwrap_or_else(|e| panic!("{label}: guarded fast path failed: {e:?}")),
            baseline,
            "{label}: guarded fast path diverged"
        );

        let bytes = mitigator.to_bytes().expect("to_bytes");
        let restored = fsda::core::pipeline::restore(&bytes).expect("restore");
        assert_eq!(
            restored.predict_batch_with(&probe, Some(2), InferPrecision::F64Exact),
            baseline,
            "{label}: restored exact path diverged"
        );
        assert_eq!(
            restored.predict_batch_with(&probe, Some(2), InferPrecision::F32Fast),
            baseline,
            "{label}: restored f32 plan flipped a prediction"
        );
    }
}

#[test]
fn trait_object_precision_entry_points_delegate() {
    let (source, shots, probe) = fixture();
    let adapter = FsGanAdapter::fit(&source, &shots, &tiny_config(), 77).expect("fit");
    let boxed: Box<dyn DriftMitigator> = Box::new(adapter);
    let exact = boxed.predict_batch(&probe, Some(2));
    assert_eq!(
        boxed.predict_batch_with(&probe, Some(2), InferPrecision::F64Exact),
        exact
    );
    // The fixture is well separated; the fast path agrees on every row.
    assert_eq!(
        boxed.predict_batch_with(&probe, Some(2), InferPrecision::F32Fast),
        exact
    );
    let guard = fsda::core::GuardConfig::default();
    assert_eq!(
        boxed
            .try_predict_batch_with(&probe, Some(2), &guard, InferPrecision::F32Fast)
            .expect("guarded fast path"),
        exact
    );
}
