//! Golden scenario fixture: `tests/fixtures/scenario_basic.scn` is the
//! canonical easy drift cell (layered topology, strong abrupt drift, no
//! adversarial coupling), and this test pins what two registry methods
//! with a causal front-end recover on it — the exact detected variant
//! set and the feature-shift recall/precision it implies. Any change to
//! the scenario compiler, the SCM sampler, the F-node search, or the
//! registry wiring that silently moves these numbers fails here.
//!
//! The pinned values hold at any thread count (the scenario generators
//! and the cell runner are bit-deterministic by contract), so this test
//! never needs a tolerance: a drifted value is a real behaviour change,
//! and intentional ones update the constants below alongside the code.

use fsda::core::adapter::AdapterConfig;
use fsda::core::sweep::run_scenario_cell;
use fsda::core::Method;
use fsda::data::fewshot::few_shot_subset;
use fsda::data::scenario::ScenarioSpec;
use fsda::linalg::SeededRng;
use fsda::models::ClassifierKind;

/// Ground truth of the fixture spec: one intervened column per variant
/// rank, stride `features / variant = 5`, plus what each method must
/// detect and score on it.
const EXPECTED_TRUTH: [usize; 6] = [0, 5, 10, 16, 21, 26];
const EXPECTED_RECALL: f64 = 1.0;
const EXPECTED_PRECISION: f64 = 1.0;
const EXPECTED_DETECTED: [usize; 6] = [0, 5, 10, 16, 21, 26];

fn fixture_spec() -> ScenarioSpec {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/scenario_basic.scn");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    ScenarioSpec::parse(&text).expect("fixture spec must parse")
}

#[test]
fn golden_scenario_recovery_is_pinned() {
    let spec = fixture_spec();
    let compiled = spec.compile().expect("fixture spec must compile");
    assert_eq!(
        compiled.ground_truth_variant(),
        EXPECTED_TRUTH,
        "fixture ground truth moved"
    );
    let data = compiled.generate(Some(1)).expect("generate");
    let shots = few_shot_subset(&data.target_pool, spec.shots, &mut SeededRng::new(1))
        .expect("few-shot draw");
    let config = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);

    for method in [Method::Fs, Method::FsGan] {
        let out = run_scenario_cell(
            method,
            &data.source_train,
            &shots,
            &data.target_test,
            &data.ground_truth_variant,
            &config,
            5,
        )
        .unwrap_or_else(|e| panic!("{method:?} cell failed: {e}"));
        let detected = out
            .detected_variant
            .unwrap_or_else(|| panic!("{method:?} must expose a variant set"));
        assert_eq!(
            detected, EXPECTED_DETECTED,
            "{method:?}: detected variant set moved"
        );
        let rec = out.recovery.expect("recovery follows detection");
        assert_eq!(
            rec.recall, EXPECTED_RECALL,
            "{method:?}: FS recall moved (tp {}, fn {})",
            rec.true_positives, rec.false_negatives
        );
        assert_eq!(
            rec.precision, EXPECTED_PRECISION,
            "{method:?}: FS precision moved (tp {}, fp {})",
            rec.true_positives, rec.false_positives
        );
        assert!(
            out.macro_f1 > 0.45,
            "{method:?}: end-to-end macro-F1 collapsed: {}",
            out.macro_f1
        );
    }
}

#[test]
fn golden_scenario_beats_source_only() {
    // The fixture exists to catch regressions in *mitigation*: on this
    // strongly drifted cell the causal methods must stay clearly ahead of
    // the unmitigated source-only baseline.
    let spec = fixture_spec();
    let compiled = spec.compile().expect("compile");
    let data = compiled.generate(Some(1)).expect("generate");
    let shots = few_shot_subset(&data.target_pool, spec.shots, &mut SeededRng::new(1))
        .expect("few-shot draw");
    let config = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    let run = |m: Method| {
        run_scenario_cell(
            m,
            &data.source_train,
            &shots,
            &data.target_test,
            &data.ground_truth_variant,
            &config,
            5,
        )
        .unwrap_or_else(|e| panic!("{m:?} cell failed: {e}"))
        .macro_f1
    };
    let fs = run(Method::Fs);
    let src = run(Method::SrcOnly);
    assert!(
        fs > src + 0.1,
        "FS ({fs:.3}) must clearly beat SrcOnly ({src:.3}) on the golden cell"
    );
}
