//! The telemetry contract: every registered [`Method`] must emit its
//! `pipeline.fit.{slug}` / `pipeline.predict.{slug}` counters and the
//! shared fit/predict latency histograms when driven through the uniform
//! [`DriftMitigator`] interface, and the aggregating recorder's counts
//! must match the engines' own ground truth (the CI-test counters equal
//! the `tests_run` the searches report; the serving counters equal the
//! repairs the guard actually performed).
//!
//! The recorder slot is process-wide, so every test here serializes on
//! one mutex and installs a fresh [`InMemoryRecorder`] for its own
//! assertions.

use fsda::causal::ci::FisherZ;
use fsda::causal::fnode::{find_intervened_features, FnodeConfig};
use fsda::causal::pc::{pc, PcConfig};
use fsda::core::adapter::{AdapterConfig, Budget};
use fsda::core::telemetry::{self, InMemoryRecorder};
use fsda::core::{GuardConfig, InputPolicy, Method};
use fsda::data::fewshot::few_shot_subset;
use fsda::data::synth5gc::Synth5gc;
use fsda::linalg::{Matrix, SeededRng};
use fsda::models::ClassifierKind;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Serializes the tests in this binary: the recorder slot is global, and
/// two tests recording concurrently would see each other's emissions.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Every method the registry serves.
fn all_methods() -> Vec<Method> {
    Method::ALL.to_vec()
}

/// The contract is about emission, not model quality: minimum budget.
fn tiny_config() -> AdapterConfig {
    AdapterConfig {
        classifier: ClassifierKind::Mlp,
        budget: Budget {
            nn_epochs: 3,
            gan_epochs: 20,
            emb_epochs: 3,
            forest_trees: 5,
            gbdt_rounds: 3,
            threads: 2,
        },
        ..AdapterConfig::default()
    }
}

/// Chain-correlated Gaussian data for the causal searches.
fn chain_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = SeededRng::new(seed);
    let mut m = Matrix::zeros(n, d);
    for r in 0..n {
        for c in 0..d {
            let v = if c == 0 {
                rng.normal(0.0, 1.0)
            } else {
                0.7 * m.get(r, c - 1) + rng.normal(0.0, 0.7)
            };
            m.set(r, c, v);
        }
    }
    m
}

#[test]
fn every_method_emits_fit_and_predict_telemetry() {
    let _guard = telemetry_lock();
    let bundle = Synth5gc::small().generate(61).unwrap();
    let mut rng = SeededRng::new(62);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    let test = bundle.target_test.features();
    let config = tiny_config();

    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());

    let methods = all_methods();
    for (i, &method) in methods.iter().enumerate() {
        let before = recorder.snapshot_now();
        let mut mitigator = method.build(&config, 63 + i as u64);
        mitigator
            .fit(&bundle.source_train, &shots)
            .unwrap_or_else(|e| panic!("{method}: fit failed: {e}"));
        let pred = mitigator.predict(test);
        assert_eq!(pred.len(), test.rows());
        let after = recorder.snapshot_now();

        let slug = method.slug();
        let fit_name = format!("pipeline.fit.{slug}");
        let predict_name = format!("pipeline.predict.{slug}");
        assert_eq!(
            after.counter(&fit_name) - before.counter(&fit_name),
            1,
            "{method}: fit must bump {fit_name} exactly once"
        );
        assert_eq!(
            after.counter(&predict_name) - before.counter(&predict_name),
            1,
            "{method}: predict must bump {predict_name} exactly once"
        );
    }

    // The shared latency histograms saw every call: one fit and one
    // predict per method, no more (internal stages never re-enter the
    // trait entry points, so nothing double-counts).
    let end = recorder.snapshot_now();
    let fit_hist = end
        .histogram("pipeline.fit.seconds")
        .expect("fit histogram must exist");
    assert_eq!(fit_hist.count, methods.len() as u64);
    let predict_hist = end
        .histogram("pipeline.predict.seconds")
        .expect("predict histogram must exist");
    assert_eq!(predict_hist.count, methods.len() as u64);

    telemetry::clear_recorder();
}

#[test]
fn pc_search_counter_matches_reported_tests() {
    let _guard = telemetry_lock();
    let data = chain_data(200, 12, 7);
    let test = FisherZ::new(&data).unwrap();
    let config = PcConfig {
        alpha: 0.01,
        max_cond_size: 2,
        parallel: false,
        num_threads: None,
    };

    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());
    let result = pc(&test, &config).unwrap();
    telemetry::clear_recorder();

    let snapshot = recorder.snapshot_now();
    assert_eq!(
        snapshot.counter("causal.pc.ci_tests"),
        result.tests_run as u64,
        "the telemetry counter must equal the search's own tally"
    );
    assert_eq!(snapshot.counter("causal.pc.searches"), 1);
    // Depth 0 always runs; its timing must have been recorded.
    let depth0 = snapshot
        .histogram("causal.pc.depth0.seconds")
        .expect("depth-0 timing must exist");
    assert_eq!(depth0.count, 1);
}

#[test]
fn fnode_search_counter_matches_reported_tests() {
    let _guard = telemetry_lock();
    let source = chain_data(150, 8, 11);
    // Target: same process, two features shifted — gives the search
    // genuine variant candidates to chew through.
    let mut target = chain_data(150, 8, 12);
    for r in 0..target.rows() {
        target.set(r, 2, target.get(r, 2) + 3.0);
        target.set(r, 5, target.get(r, 5) + 3.0);
    }
    let config = FnodeConfig::default();

    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());
    let result = find_intervened_features(&source, &target, &config).unwrap();
    telemetry::clear_recorder();

    let snapshot = recorder.snapshot_now();
    assert_eq!(
        snapshot.counter("causal.fnode.ci_tests"),
        result.tests_run as u64,
        "the telemetry counter must equal the search's own tally"
    );
    assert_eq!(snapshot.counter("causal.fnode.searches"), 1);
    assert_eq!(
        snapshot.gauge("causal.fnode.variant_features"),
        Some(result.variant.len() as f64),
        "the gauge must report the variant-set size the search returned"
    );
}

#[test]
fn guarded_serving_counters_match_repairs() {
    let _guard = telemetry_lock();
    let bundle = Synth5gc::small().generate(61).unwrap();
    let mut rng = SeededRng::new(62);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    let config = tiny_config();
    let mut mitigator = Method::Fs.build(&config, 63);
    mitigator.fit(&bundle.source_train, &shots).unwrap();

    let clean = bundle.target_test.features().clone();
    let mut dirty = clean.clone();
    dirty.set(0, 0, f64::NAN);
    dirty.set(1, 3, f64::NAN);

    let recorder = Arc::new(InMemoryRecorder::new());
    telemetry::set_recorder(recorder.clone());

    // Clean batch, reject policy: a request, no repairs, no rejection.
    let guard = GuardConfig::default();
    mitigator
        .try_predict_batch(&clean, Some(1), &guard)
        .expect("clean batch must pass");
    // Dirty batch, reject policy: counted as a rejected batch.
    assert!(mitigator
        .try_predict_batch(&dirty, Some(1), &guard)
        .is_err());
    // Dirty batch, impute policy: two cells repaired across two rows.
    let repair = GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean);
    mitigator
        .try_predict_batch(&dirty, Some(1), &repair)
        .expect("imputing guard must repair the batch");

    telemetry::clear_recorder();
    let snapshot = recorder.snapshot_now();
    let slug = Method::Fs.slug();
    assert_eq!(
        snapshot.counter(&format!("serve.requests.{slug}")),
        3,
        "every guarded request counts, rejected or not"
    );
    assert_eq!(snapshot.counter("serve.batches_rejected"), 1);
    assert_eq!(snapshot.counter("serve.cells_imputed"), 2);
    assert_eq!(snapshot.counter("serve.cells_clamped"), 0);
    assert_eq!(snapshot.counter("serve.rows_repaired"), 2);
}
